"""Simulated RSS news trace.

The paper's second real-world trace: "130 different RSS feeds with about
68000 news events that were gathered during a period of two months from
Aug. to Oct. 2007" (Section V-A.1).  We substitute a seeded generator
matching the trace's aggregate shape:

* **130 feeds** with **~68,000 events** over the epoch;
* per-feed publication rates are **Zipf-skewed** — the study of web feeds
  the paper cites [5] estimated a popularity/activity skew of α ≈ 1.37,
  and a handful of wire-service feeds (CNN-like) dominate volume;
* intensity is **diurnally modulated** — news volume oscillates with the
  news day; the epoch maps the two-month window, so roughly 60 diurnal
  periods fit inside it.

With the paper's K = 1000 chronons, one chronon is ~90 minutes of wall
time, so busy feeds publish several items per chronon; the scheduling
layer consumes the *distinct* event chronons (a probe collects a whole
chronon's items), while :attr:`NewsTrace.raw_event_count` preserves the
~68k raw total for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import TraceError
from repro.core.timebase import Epoch
from repro.traces.events import TraceBundle

#: Aggregates of the original trace, used as generator defaults.
PAPER_NUM_FEEDS = 130
PAPER_TOTAL_EVENTS = 68_000
PAPER_FEED_SKEW = 1.37  # activity skew estimated for web feeds in [5]
PAPER_DIURNAL_PERIODS = 60  # two months of daily cycles


@dataclass(slots=True)
class NewsTrace:
    """A simulated news trace plus its raw (pre-collapse) event count."""

    bundle: TraceBundle
    raw_event_count: int

    @property
    def num_feeds(self) -> int:
        return len(self.bundle)


def simulate_news_trace(
    epoch: Epoch,
    rng: np.random.Generator,
    num_feeds: int = PAPER_NUM_FEEDS,
    total_events: int = PAPER_TOTAL_EVENTS,
    skew: float = PAPER_FEED_SKEW,
    diurnal_periods: int = PAPER_DIURNAL_PERIODS,
    diurnal_amplitude: float = 0.6,
) -> NewsTrace:
    """Generate a synthetic stand-in for the paper's RSS news trace.

    Parameters
    ----------
    epoch:
        The monitoring epoch the two-month window is mapped onto.
    rng:
        Seeded generator.
    num_feeds, total_events:
        Aggregate targets; defaults match the paper's trace.
    skew:
        Zipf exponent of per-feed event volume (0 = uniform feeds).
    diurnal_periods:
        Number of intensity cycles across the epoch (0 disables).
    diurnal_amplitude:
        Relative swing of the diurnal modulation, in [0, 1).
    """
    if num_feeds <= 0:
        raise TraceError(f"need at least one feed, got {num_feeds}")
    if total_events < num_feeds:
        raise TraceError(
            f"total events ({total_events}) must cover one event per feed "
            f"({num_feeds})"
        )
    if skew < 0:
        raise TraceError(f"skew must be >= 0, got {skew}")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise TraceError(
            f"diurnal amplitude must be in [0, 1), got {diurnal_amplitude}"
        )

    k = len(epoch)

    # Zipf-skewed volume shares across feeds.
    ranks = np.arange(1, num_feeds + 1, dtype=float)
    shares = ranks ** (-skew)
    shares = shares / shares.sum()
    extra = total_events - num_feeds
    counts = 1 + rng.multinomial(extra, shares)

    # Diurnal intensity profile over chronons, shared by all feeds.
    chronons = np.arange(k, dtype=float)
    if diurnal_periods > 0 and k > 1:
        phase = 2.0 * np.pi * diurnal_periods * chronons / k
        intensity = 1.0 + diurnal_amplitude * np.sin(phase)
    else:
        intensity = np.ones(k)
    probabilities = intensity / intensity.sum()

    events: dict[int, list[int]] = {}
    raw_total = 0
    for rid in range(num_feeds):
        count = int(counts[rid])
        raw_total += count
        times = rng.choice(k, size=count, replace=True, p=probabilities)
        # Collapse same-chronon items; one probe retrieves the chronon.
        events[rid] = sorted(set(int(t) for t in times))

    return NewsTrace(bundle=TraceBundle.from_mapping(events), raw_event_count=raw_total)
