"""The FPN(Z) noisy update model (paper Section V-H, after [3]).

When update events are stochastic, the proxy schedules EIs from a
*predicted* event stream produced by an update model.  FPN(Z) injects
noise into a perfect model: with probability ``Z`` an event is predicted
exactly; with probability ``1 - Z`` the prediction deviates from the real
event (a *false-positive/negative* prediction), so the EI scheduled on the
prediction can miss the real availability window.

The paper's wording: "Z = 1 corresponds to an update model with no noise
(a perfect model).  The value Z = 0 corresponds to a totally noisy model
where every EI has a deviation from the real event."  (Section V-H then
speaks of completeness decreasing as noise increases; we report against
``noise_level = 1 - Z`` so the monotone statement reads directly — see
DESIGN.md for the note on the paper's inconsistent sentence.)

Deviations are uniform shifts of ±1..``max_shift`` chronons, clamped to
the epoch.  :func:`predict_stream` returns *paired* (true, predicted)
chronons so EI builders can attach the ground-truth window to each
scheduled EI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import TraceError
from repro.core.timebase import Chronon, Epoch
from repro.traces.events import EventStream, TraceBundle


@dataclass(frozen=True, slots=True)
class PredictedEvent:
    """One event as the model sees it: ground truth plus prediction."""

    true_chronon: Chronon
    predicted_chronon: Chronon

    @property
    def deviation(self) -> int:
        return self.predicted_chronon - self.true_chronon


@dataclass(frozen=True, slots=True)
class FPNModel:
    """FPN(Z): predict each event correctly with probability Z."""

    z: float
    max_shift: int = 5

    def __post_init__(self) -> None:
        if not 0.0 <= self.z <= 1.0:
            raise TraceError(f"Z must be in [0, 1], got {self.z}")
        if self.max_shift < 1:
            raise TraceError(f"max shift must be >= 1, got {self.max_shift}")

    @property
    def noise_level(self) -> float:
        """``1 - Z``: the probability that a prediction deviates."""
        return 1.0 - self.z

    def predict_stream(
        self,
        stream: EventStream,
        epoch: Epoch,
        rng: np.random.Generator,
    ) -> list[PredictedEvent]:
        """Predict every event of one stream, pairing truth to prediction."""
        predictions: list[PredictedEvent] = []
        for chronon in stream:
            if self.z >= 1.0 or rng.random() < self.z:
                predicted = chronon
            else:
                magnitude = int(rng.integers(1, self.max_shift + 1))
                sign = 1 if rng.random() < 0.5 else -1
                predicted = epoch.clamp(chronon + sign * magnitude)
                if predicted == chronon:
                    # Clamping landed back on the truth; push the other way.
                    predicted = epoch.clamp(chronon - sign * magnitude)
            predictions.append(
                PredictedEvent(true_chronon=chronon, predicted_chronon=predicted)
            )
        return predictions

    def predict_bundle(
        self,
        bundle: TraceBundle,
        epoch: Epoch,
        rng: np.random.Generator,
    ) -> dict[int, list[PredictedEvent]]:
        """Predict every stream of a bundle, keyed by resource id."""
        return {
            rid: self.predict_stream(bundle.stream(rid), epoch, rng)
            for rid in bundle.resources
        }


def poisson_model_predictions(
    bundle: TraceBundle, epoch: Epoch
) -> dict[int, list[PredictedEvent]]:
    """Predictions from a homogeneous Poisson update model (Section V-H).

    For the news-trace noise experiment the paper "used an homogeneous
    Poisson update model, calculating λ as the average number of updates
    of each RSS news resource during [the collection period] to generate
    the EIs", then validated captures against the real trace.  The
    homogeneous model's best-effort schedule spreads its λ_r predicted
    events evenly over the epoch; we pair the j-th real event with the
    j-th model event, so the prediction error is exactly the burstiness
    the homogeneous model cannot see.
    """
    k = len(epoch)
    predictions: dict[int, list[PredictedEvent]] = {}
    for rid in bundle.resources:
        events = bundle.stream(rid).chronons
        count = len(events)
        paired: list[PredictedEvent] = []
        for j, true_chronon in enumerate(events):
            model_chronon = epoch.clamp(int((j + 0.5) * k / count))
            paired.append(
                PredictedEvent(
                    true_chronon=true_chronon, predicted_chronon=model_chronon
                )
            )
        predictions[rid] = paired
    return predictions


def perfect_predictions(bundle: TraceBundle) -> dict[int, list[PredictedEvent]]:
    """The Z = 1 shortcut: every prediction equals the truth."""
    return {
        rid: [
            PredictedEvent(true_chronon=c, predicted_chronon=c)
            for c in bundle.stream(rid)
        ]
        for rid in bundle.resources
    }
