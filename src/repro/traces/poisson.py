"""Synthetic Poisson update traces (paper Section V-A.1).

"We also used a synthetic data stream that was generated using a Poisson
based update model; the parameter λ controls the update intensity of each
resource."  λ in Table I is the *average number of updates per resource
over the epoch* (baseline 20, range [10, 50]).

Each resource draws its event count from Poisson(λ_r) and places the
events at distinct uniformly-random chronons.  ``heterogeneity`` adds
across-resource rate variation (gamma-multiplied λ), which makes the
synthetic workload less artificially uniform; 0 reproduces the paper's
homogeneous model.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import TraceError
from repro.core.timebase import Epoch
from repro.traces.events import TraceBundle


def poisson_trace(
    num_resources: int,
    epoch: Epoch,
    mean_updates: float,
    rng: np.random.Generator,
    heterogeneity: float = 0.0,
) -> TraceBundle:
    """Generate a Poisson trace of ``num_resources`` independent streams.

    Parameters
    ----------
    num_resources:
        Number of resources to generate streams for (ids ``0..n-1``).
    epoch:
        Epoch bounding event chronons.
    mean_updates:
        λ — expected events per resource over the whole epoch.
    rng:
        Seeded generator; the trace is a pure function of it.
    heterogeneity:
        Coefficient of variation of per-resource rates.  0 keeps all
        resources at λ; larger values draw per-resource rates from a
        gamma distribution with that CV (mean preserved).
    """
    if num_resources <= 0:
        raise TraceError(f"need at least one resource, got {num_resources}")
    if mean_updates < 0:
        raise TraceError(f"mean updates must be >= 0, got {mean_updates}")
    if heterogeneity < 0:
        raise TraceError(f"heterogeneity must be >= 0, got {heterogeneity}")

    k = len(epoch)
    if heterogeneity == 0.0:
        rates = np.full(num_resources, float(mean_updates))
    else:
        shape = 1.0 / (heterogeneity**2)
        scale = mean_updates / shape
        rates = rng.gamma(shape, scale, size=num_resources)

    events: dict[int, list[int]] = {}
    for rid in range(num_resources):
        count = int(rng.poisson(rates[rid]))
        count = min(count, k)  # at most one update per chronon per resource
        if count == 0:
            events[rid] = []
            continue
        chronons = rng.choice(k, size=count, replace=False)
        events[rid] = sorted(int(c) for c in chronons)
    return TraceBundle.from_mapping(events)
