"""Trace statistics: the numbers update models and planners feed on.

The paper motivates its setting with feed statistics ("55% of Web feeds
are updated hourly", Section II).  This module computes the equivalent
statistics of any trace:

* per-resource and aggregate update rates;
* inter-arrival summaries (mean/median gap, coefficient of variation —
  CV > 1 means bursty, CV ≈ 1 Poisson-like, CV < 1 regular);
* a *burstiness index* (Fano factor of binned counts);
* the empirical time-of-epoch intensity profile, which exposes diurnal
  cycles (:func:`intensity_profile`) and the dominant cycle count
  (:func:`dominant_period`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import TraceError
from repro.core.timebase import Epoch
from repro.traces.events import EventStream, TraceBundle


@dataclass(frozen=True, slots=True)
class StreamStats:
    """Summary statistics of one resource's update stream."""

    num_events: int
    rate: float  # events per chronon
    mean_gap: float
    median_gap: float
    gap_cv: float  # coefficient of variation of inter-arrival gaps

    @property
    def is_bursty(self) -> bool:
        """CV noticeably above 1 signals bursty (clustered) updates."""
        return self.gap_cv > 1.2


def stream_stats(stream: EventStream, epoch: Epoch) -> StreamStats:
    """Summarize one event stream over an epoch."""
    chronons = np.asarray(stream.chronons, dtype=float)
    count = chronons.size
    rate = count / len(epoch)
    if count < 2:
        return StreamStats(
            num_events=int(count),
            rate=rate,
            mean_gap=float(len(epoch)),
            median_gap=float(len(epoch)),
            gap_cv=0.0,
        )
    gaps = np.diff(chronons)
    mean_gap = float(gaps.mean())
    cv = float(gaps.std() / mean_gap) if mean_gap > 0 else 0.0
    return StreamStats(
        num_events=int(count),
        rate=rate,
        mean_gap=mean_gap,
        median_gap=float(np.median(gaps)),
        gap_cv=cv,
    )


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Aggregate statistics of a whole trace bundle."""

    num_resources: int
    total_events: int
    mean_rate: float
    rate_cv: float  # across-resource rate inequality
    mean_gap_cv: float  # average within-resource burstiness
    fano_factor: float  # variance/mean of binned aggregate counts

    @property
    def is_heterogeneous(self) -> bool:
        """Do resources differ strongly in activity (rate CV > 0.5)?"""
        return self.rate_cv > 0.5


def trace_stats(bundle: TraceBundle, epoch: Epoch, bins: int = 20) -> TraceStats:
    """Summarize a trace bundle over an epoch."""
    if bins <= 0:
        raise TraceError(f"need at least one bin, got {bins}")
    if not bundle.streams:
        return TraceStats(
            num_resources=0, total_events=0, mean_rate=0.0,
            rate_cv=0.0, mean_gap_cv=0.0, fano_factor=0.0,
        )
    per_stream = [
        stream_stats(bundle.stream(rid), epoch) for rid in bundle.resources
    ]
    rates = np.asarray([s.rate for s in per_stream])
    gap_cvs = np.asarray([s.gap_cv for s in per_stream if s.num_events >= 2])

    counts = np.zeros(bins)
    for rid in bundle.resources:
        for chronon in bundle.stream(rid):
            index = min(bins - 1, int(chronon * bins / len(epoch)))
            counts[index] += 1
    mean_count = counts.mean()
    fano = float(counts.var() / mean_count) if mean_count > 0 else 0.0

    return TraceStats(
        num_resources=len(bundle),
        total_events=bundle.total_events,
        mean_rate=float(rates.mean()),
        rate_cv=float(rates.std() / rates.mean()) if rates.mean() > 0 else 0.0,
        mean_gap_cv=float(gap_cvs.mean()) if gap_cvs.size else 0.0,
        fano_factor=fano,
    )


def intensity_profile(
    bundle: TraceBundle, epoch: Epoch, bins: int = 48
) -> np.ndarray:
    """Aggregate events per bin, normalized to mean 1 (the demand shape)."""
    if bins <= 0:
        raise TraceError(f"need at least one bin, got {bins}")
    counts = np.zeros(bins)
    for rid in bundle.resources:
        for chronon in bundle.stream(rid):
            index = min(bins - 1, int(chronon * bins / len(epoch)))
            counts[index] += 1
    mean = counts.mean()
    if mean == 0:
        return counts
    return counts / mean


def dominant_period(
    bundle: TraceBundle, epoch: Epoch, bins: int = 240
) -> int:
    """The dominant cycle count of the aggregate intensity (0 if none).

    Returns how many cycles of the strongest periodic component fit into
    the epoch, found from the discrete Fourier spectrum of the binned
    intensity.  A diurnally-modulated two-month trace returns ~60; a
    homogeneous trace returns 0 (no component clears the noise floor).
    """
    profile = intensity_profile(bundle, epoch, bins=bins)
    if profile.sum() == 0:
        return 0
    centered = profile - profile.mean()
    spectrum = np.abs(np.fft.rfft(centered))
    if spectrum.size <= 1:
        return 0
    spectrum[0] = 0.0
    peak = int(np.argmax(spectrum))
    # Significance: the peak must clearly dominate the median component.
    noise_floor = np.median(spectrum[1:])
    if noise_floor <= 0 or spectrum[peak] < 6.0 * noise_floor:
        return 0
    return peak
