"""Workload generation: Zipf samplers, profile templates, 2-stage generator."""

from repro.workloads.generator import (
    GeneratorSpec,
    assign_random_weights,
    generate_profiles,
)
from repro.workloads.templates import (
    LengthKind,
    LengthRule,
    arbitrage_ceis,
    build_ei,
    crossing_ceis,
    periodic_ceis,
)
from repro.workloads.validators import (
    ValidationReport,
    Violation,
    check_distinct_resources_per_cei,
    check_fixed_rank,
    check_no_intra_resource_overlap,
    check_unit_widths,
    check_within_epoch,
    validate_instance,
)
from repro.workloads.zipfs import ZipfSampler, zipf_probabilities

__all__ = [
    "GeneratorSpec",
    "LengthKind",
    "LengthRule",
    "ValidationReport",
    "Violation",
    "ZipfSampler",
    "check_distinct_resources_per_cei",
    "check_fixed_rank",
    "check_no_intra_resource_overlap",
    "check_unit_widths",
    "check_within_epoch",
    "arbitrage_ceis",
    "assign_random_weights",
    "build_ei",
    "crossing_ceis",
    "generate_profiles",
    "periodic_ceis",
    "validate_instance",
    "zipf_probabilities",
]
