"""Two-stage Zipf profile generation (paper Section V-A.2).

"We generated up to m profile instances from a template using a 2-stage
process and 2 Zipf distributions":

1. the *rank* of each profile instance is drawn from ``Zipf(β, k)`` — β=0
   is uniform over ``[1, k]``; positive β produces more low-rank profiles
   (intra-user complexity variance);
2. given a rank, the profile's resources are drawn from ``Zipf(α, n)`` —
   α=0 is uniform; positive α skews toward "popular" resources (α ≈ 1.37
   was estimated for web feeds in [5]), which concentrates EIs on few
   resources and creates intra-resource overlap across profiles.

Figure 10 additionally requires *fixed*-rank instances ("if rank = 3 then
all CEIs ... have exactly 3 EIs") and *distinct* resources per CEI (to
avoid intra-resource overlap); both knobs are exposed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.errors import WorkloadError
from repro.core.profile import Profile, ProfileSet
from repro.core.resource import ResourceId
from repro.core.timebase import Epoch
from repro.traces.noise import PredictedEvent
from repro.workloads.templates import LengthRule, crossing_ceis
from repro.workloads.zipfs import ZipfSampler


@dataclass(frozen=True, slots=True)
class GeneratorSpec:
    """Knobs of the 2-stage generation process (defaults = Table I)."""

    num_profiles: int
    rank_max: int
    alpha: float = 0.3  # inter-user resource-popularity skew
    beta: float = 0.0  # intra-user rank variance
    fixed_rank: Optional[int] = None  # force every profile to this rank
    distinct_resources: bool = True  # each CEI's EIs on distinct resources
    exclusive_resources: bool = False  # no resource shared across profiles
    max_ceis_per_profile: Optional[int] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.num_profiles <= 0:
            raise WorkloadError(
                f"need at least one profile, got {self.num_profiles}"
            )
        if self.rank_max <= 0:
            raise WorkloadError(f"rank_max must be positive, got {self.rank_max}")
        if self.fixed_rank is not None and not 1 <= self.fixed_rank <= self.rank_max:
            raise WorkloadError(
                f"fixed rank {self.fixed_rank} outside [1, {self.rank_max}]"
            )
        if self.alpha < 0 or self.beta < 0:
            raise WorkloadError("Zipf exponents must be >= 0")


def generate_profiles(
    predictions: dict[ResourceId, list[PredictedEvent]],
    epoch: Epoch,
    spec: GeneratorSpec,
    rule: LengthRule,
    rng: np.random.Generator,
) -> ProfileSet:
    """Instantiate ``spec.num_profiles`` crossing profiles from a trace.

    ``predictions`` maps each resource to its (possibly noisy) predicted
    event stream — use :func:`repro.traces.noise.perfect_predictions` for
    a noiseless run.  Resources with no events are never chosen (their
    crossings could produce zero CEIs).
    """
    eligible = sorted(rid for rid, events in predictions.items() if events)
    if not eligible:
        raise WorkloadError("no resource has any predicted event")

    rank_cap = min(spec.rank_max, len(eligible)) if spec.distinct_resources else spec.rank_max
    if rank_cap < 1:
        raise WorkloadError("not enough eligible resources for any profile")
    if spec.fixed_rank is not None and spec.fixed_rank > rank_cap:
        raise WorkloadError(
            f"fixed rank {spec.fixed_rank} exceeds eligible resources ({rank_cap})"
        )

    rank_sampler = ZipfSampler(spec.beta, rank_cap, rng)
    resource_sampler = ZipfSampler(spec.alpha, len(eligible), rng)
    unclaimed = list(eligible)  # for exclusive (no-overlap) assignment

    profiles = ProfileSet()
    for pid in range(spec.num_profiles):
        if spec.fixed_rank is not None:
            rank = spec.fixed_rank
        else:
            rank = rank_sampler.sample()
        if spec.exclusive_resources:
            # Globally exclusive assignment removes every intra-resource
            # overlap across profiles (the Figure 10 requirement).
            if rank > len(unclaimed):
                raise WorkloadError(
                    f"profile {pid} needs {rank} exclusive resources but only "
                    f"{len(unclaimed)} remain unclaimed"
                )
            picks = rng.choice(len(unclaimed), size=rank, replace=False)
            chosen = [unclaimed[i] for i in sorted(int(p) for p in picks)]
            claimed = set(chosen)
            unclaimed = [rid for rid in unclaimed if rid not in claimed]
        elif spec.distinct_resources:
            indices = resource_sampler.sample_distinct(rank)
            chosen = [eligible[i - 1] for i in indices]
        else:
            indices = [int(v) for v in resource_sampler.sample_many(rank)]
            chosen = [eligible[i - 1] for i in indices]
        ceis = crossing_ceis(
            chosen=chosen,
            predictions=predictions,
            rule=rule,
            epoch=epoch,
            max_ceis=spec.max_ceis_per_profile,
            weight=spec.weight,
        )
        profiles.add(Profile(pid=pid, ceis=ceis))
    return profiles


def assign_random_weights(
    profiles: ProfileSet,
    rng: np.random.Generator,
    low: float = 0.5,
    high: float = 2.0,
) -> ProfileSet:
    """Rebuild a profile set with uniform-random CEI utilities.

    Used by the utility-weighted ablation (paper Section VII future
    work); EIs are copied so the original set is left untouched.
    """
    from repro.core.intervals import ComplexExecutionInterval, ExecutionInterval

    if low <= 0 or high < low:
        raise WorkloadError(f"need 0 < low <= high, got [{low}, {high}]")
    rebuilt = ProfileSet()
    for profile in profiles:
        ceis = []
        for cei in profile:
            weight = float(rng.uniform(low, high))
            eis = tuple(
                ExecutionInterval(
                    resource=ei.resource,
                    start=ei.start,
                    finish=ei.finish,
                    true_start=ei.true_start,
                    true_finish=ei.true_finish,
                )
                for ei in cei.eis
            )
            ceis.append(
                ComplexExecutionInterval(
                    eis=eis,
                    semantics=cei.semantics,
                    required=cei.required,
                    weight=weight,
                )
            )
        rebuilt.add(Profile(pid=profile.pid, ceis=ceis))
    return rebuilt
