"""Profile templates: turning event traces into CEIs.

The paper specifies complex user needs through *profile templates*
(Section V-A.2).  "AuctionWatch(k)" monitors the prices of k auctions and
notifies the user after a new bid is posted in all k auctions; the length
of each EI is either **overwrite** (deliver the bid before the next one
overwrites it) or **window(w)** (deliver within w chronons of posting).

This module provides

* :class:`LengthRule` — the window(w) / overwrite EI-length semantics;
* :func:`build_ei` — one EI from one (possibly noisy) predicted event;
* :func:`crossing_ceis` — the generic stream-crossing template: CEI ``j``
  combines the ``j``-th event of each chosen resource (AuctionWatch and
  the news mashups are instances of this);
* :func:`arbitrage_ceis` — the Example 1/3 template: a trigger stream's
  events open short simultaneous windows on the other streams;
* :func:`periodic_ceis` — Example 2's q1: a pull every ``period`` chronons
  with a slack window, optionally expanding (keyword hit) into a
  conditional mashup over extra resources.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import WorkloadError
from repro.core.intervals import ComplexExecutionInterval, ExecutionInterval
from repro.core.resource import ResourceId
from repro.core.timebase import Epoch
from repro.traces.noise import PredictedEvent


class LengthKind(enum.Enum):
    """How the EI window length is determined (paper Section V-A.2)."""

    WINDOW = "window"
    OVERWRITE = "overwrite"


@dataclass(frozen=True, slots=True)
class LengthRule:
    """EI length semantics: ``window(w)`` or ``overwrite``."""

    kind: LengthKind
    w: int = 0

    def __post_init__(self) -> None:
        if self.kind is LengthKind.WINDOW and self.w < 0:
            raise WorkloadError(f"window length must be >= 0, got {self.w}")

    @classmethod
    def window(cls, w: int) -> "LengthRule":
        """Deliver within ``w`` chronons of the event (w=0: immediately)."""
        return cls(kind=LengthKind.WINDOW, w=w)

    @classmethod
    def overwrite(cls) -> "LengthRule":
        """Deliver before the next event overwrites the published item."""
        return cls(kind=LengthKind.OVERWRITE)


def build_ei(
    resource: ResourceId,
    events: Sequence[PredictedEvent],
    index: int,
    rule: LengthRule,
    epoch: Epoch,
) -> ExecutionInterval:
    """Build the EI for the ``index``-th event of ``resource``.

    The *scheduling* window is derived from predicted event chronons and
    the *true* window from real ones, so a noisy model yields EIs that can
    miss their events — exactly the Section V-H methodology.
    """
    if not 0 <= index < len(events):
        raise WorkloadError(
            f"event index {index} out of range for resource {resource} "
            f"({len(events)} events)"
        )
    event = events[index]
    predicted = epoch.clamp(event.predicted_chronon)
    true = epoch.clamp(event.true_chronon)

    if rule.kind is LengthKind.WINDOW:
        finish = epoch.clamp(predicted + rule.w)
        true_finish = epoch.clamp(true + rule.w)
    else:
        if index + 1 < len(events):
            next_predicted = epoch.clamp(events[index + 1].predicted_chronon)
            next_true = epoch.clamp(events[index + 1].true_chronon)
            # Noise can reorder predictions; keep windows non-degenerate.
            finish = max(predicted, next_predicted - 1)
            true_finish = max(true, next_true - 1)
        else:
            finish = epoch.last
            true_finish = epoch.last
    return ExecutionInterval(
        resource=resource,
        start=predicted,
        finish=max(predicted, finish),
        true_start=true,
        true_finish=max(true, true_finish),
    )


def crossing_ceis(
    chosen: Sequence[ResourceId],
    predictions: dict[ResourceId, list[PredictedEvent]],
    rule: LengthRule,
    epoch: Epoch,
    max_ceis: Optional[int] = None,
    weight: float = 1.0,
) -> list[ComplexExecutionInterval]:
    """The generic stream-crossing template (AuctionWatch(k) and kin).

    CEI ``j`` combines the ``j``-th event of every chosen resource; the
    number of CEIs is the minimum event count over the chosen resources
    (a stream with no further events can never complete the crossing).
    """
    if not chosen:
        raise WorkloadError("a crossing profile needs at least one resource")
    counts = []
    for rid in chosen:
        events = predictions.get(rid)
        if events is None:
            raise WorkloadError(f"no predictions for resource {rid}")
        counts.append(len(events))
    num = min(counts)
    if max_ceis is not None:
        num = min(num, max_ceis)
    ceis: list[ComplexExecutionInterval] = []
    for j in range(num):
        eis = tuple(
            build_ei(rid, predictions[rid], j, rule, epoch) for rid in chosen
        )
        ceis.append(ComplexExecutionInterval(eis=eis, weight=weight))
    return ceis


def arbitrage_ceis(
    trigger: ResourceId,
    followers: Sequence[ResourceId],
    predictions: dict[ResourceId, list[PredictedEvent]],
    epoch: Epoch,
    trigger_slack: int = 0,
    follower_slack: int = 1,
    max_ceis: Optional[int] = None,
    weight: float = 1.0,
) -> list[ComplexExecutionInterval]:
    """The arbitrage template (paper Example 1 / Example 3).

    Every event on the ``trigger`` stream (e.g. a stock-exchange push)
    opens one CEI: the trigger itself must be crossed within
    ``trigger_slack`` chronons, and every follower stream (futures,
    currency...) within ``follower_slack`` chronons of the same moment,
    so the proxy sees all markets with overlapping time reference.
    Follower EIs are *temporal* windows — they do not depend on follower
    events, only on the trigger's timing.
    """
    events = predictions.get(trigger)
    if events is None:
        raise WorkloadError(f"no predictions for trigger resource {trigger}")
    ceis: list[ComplexExecutionInterval] = []
    limit = len(events) if max_ceis is None else min(len(events), max_ceis)
    for j in range(limit):
        event = events[j]
        predicted = epoch.clamp(event.predicted_chronon)
        true = epoch.clamp(event.true_chronon)
        eis = [
            ExecutionInterval(
                resource=trigger,
                start=predicted,
                finish=epoch.clamp(predicted + trigger_slack),
                true_start=true,
                true_finish=epoch.clamp(true + trigger_slack),
            )
        ]
        for follower in followers:
            eis.append(
                ExecutionInterval(
                    resource=follower,
                    start=predicted,
                    finish=epoch.clamp(predicted + follower_slack),
                    true_start=true,
                    true_finish=epoch.clamp(true + follower_slack),
                )
            )
        ceis.append(ComplexExecutionInterval(eis=tuple(eis), weight=weight))
    return ceis


def periodic_ceis(
    primary: ResourceId,
    epoch: Epoch,
    period: int,
    slack: int,
    conditional: Sequence[ResourceId] = (),
    conditional_slack: int = 0,
    trigger_chronons: Optional[set[int]] = None,
    weight: float = 1.0,
) -> list[ComplexExecutionInterval]:
    """The periodic-pull template (paper Example 2 / Figure 4).

    Probes ``primary`` every ``period`` chronons with ``slack`` chronons
    of delay tolerance (q1).  When the pull lands on a *trigger* chronon
    (e.g. the blog post contains "%oil%"), the CEI additionally crosses
    the ``conditional`` resources within ``conditional_slack`` chronons
    (q2, q3) — those CEIs have rank ``1 + len(conditional)``; the rest
    have rank 1, reproducing Figure 4's mixed-rank stream.
    """
    if period <= 0:
        raise WorkloadError(f"period must be positive, got {period}")
    if slack < 0 or conditional_slack < 0:
        raise WorkloadError("slack values must be >= 0")
    triggers = trigger_chronons or set()
    ceis: list[ComplexExecutionInterval] = []
    for start in range(0, len(epoch), period):
        eis = [
            ExecutionInterval(
                resource=primary,
                start=start,
                finish=epoch.clamp(start + slack),
            )
        ]
        if start in triggers:
            for rid in conditional:
                eis.append(
                    ExecutionInterval(
                        resource=rid,
                        start=start,
                        finish=epoch.clamp(start + conditional_slack),
                    )
                )
        ceis.append(ComplexExecutionInterval(eis=tuple(eis), weight=weight))
    return ceis
