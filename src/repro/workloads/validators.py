"""Workload validators: check instances against structural assumptions.

The paper's theoretical results hold only under structural conditions —
no intra-resource overlap (Props. 1, 2 and the offline ratio), unit
widths (Prop. 3), fixed rank (the Figure 10 upper bound).  These
validators make the conditions explicit and diagnosable: each returns
the list of violations (empty = valid), and :func:`validate_instance`
bundles them into a single report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.intervals import ExecutionInterval
from repro.core.profile import ProfileSet
from repro.core.timebase import Epoch


@dataclass(frozen=True, slots=True)
class Violation:
    """One structural violation, with enough context to locate it."""

    rule: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.rule}] {self.message}"


def check_within_epoch(profiles: ProfileSet, epoch: Epoch) -> list[Violation]:
    """Every EI window (scheduling and true) must fit inside the epoch."""
    violations = []
    for cei in profiles.ceis():
        for ei in cei.eis:
            assert ei.true_finish is not None
            if ei.finish not in epoch or ei.true_finish not in epoch:
                violations.append(
                    Violation(
                        rule="within-epoch",
                        message=f"CEI {cei.cid}: EI on r{ei.resource} ends at "
                        f"{max(ei.finish, ei.true_finish)} outside epoch of "
                        f"{len(epoch)}",
                    )
                )
    return violations


def check_no_intra_resource_overlap(profiles: ProfileSet) -> list[Violation]:
    """No two EIs on one resource may share a chronon (Props. 1/2 setting)."""
    by_resource: dict[int, list[ExecutionInterval]] = {}
    for ei in profiles.eis():
        by_resource.setdefault(ei.resource, []).append(ei)
    violations = []
    for resource, eis in by_resource.items():
        eis.sort(key=lambda e: (e.start, e.finish))
        for left, right in zip(eis, eis[1:]):
            if left.overlaps(right):
                violations.append(
                    Violation(
                        rule="no-intra-resource-overlap",
                        message=f"r{resource}: [{left.start},{left.finish}] "
                        f"overlaps [{right.start},{right.finish}]",
                    )
                )
    return violations


def check_unit_widths(profiles: ProfileSet) -> list[Violation]:
    """Every EI must span exactly one chronon (the P^[1] class)."""
    violations = []
    for cei in profiles.ceis():
        for ei in cei.eis:
            if not ei.is_unit:
                violations.append(
                    Violation(
                        rule="unit-widths",
                        message=f"CEI {cei.cid}: EI on r{ei.resource} spans "
                        f"{ei.length} chronons",
                    )
                )
    return violations


def check_fixed_rank(profiles: ProfileSet, rank: int) -> list[Violation]:
    """Every CEI must have exactly ``rank`` EIs (the Figure 10 family)."""
    violations = []
    for cei in profiles.ceis():
        if cei.rank != rank:
            violations.append(
                Violation(
                    rule="fixed-rank",
                    message=f"CEI {cei.cid} has rank {cei.rank}, expected {rank}",
                )
            )
    return violations


def check_distinct_resources_per_cei(profiles: ProfileSet) -> list[Violation]:
    """Within a CEI, every EI must name a distinct resource."""
    violations = []
    for cei in profiles.ceis():
        resources = [ei.resource for ei in cei.eis]
        if len(resources) != len(set(resources)):
            violations.append(
                Violation(
                    rule="distinct-resources",
                    message=f"CEI {cei.cid} repeats a resource: {resources}",
                )
            )
    return violations


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """The outcome of validating one instance."""

    violations: tuple[Violation, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def to_text(self, limit: int = 10) -> str:
        if self.ok:
            return "instance valid: no violations"
        lines = [f"{len(self.violations)} violation(s): {self.by_rule()}"]
        for violation in self.violations[:limit]:
            lines.append(f"  {violation.rule}: {violation.message}")
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)


def validate_instance(
    profiles: ProfileSet,
    epoch: Epoch,
    require_no_overlap: bool = False,
    require_unit: bool = False,
    require_rank: int = 0,
    require_distinct_resources: bool = True,
) -> ValidationReport:
    """Run the selected validators and bundle their findings."""
    violations: list[Violation] = []
    violations += check_within_epoch(profiles, epoch)
    if require_distinct_resources:
        violations += check_distinct_resources_per_cei(profiles)
    if require_no_overlap:
        violations += check_no_intra_resource_overlap(profiles)
    if require_unit:
        violations += check_unit_widths(profiles)
    if require_rank > 0:
        violations += check_fixed_rank(profiles, require_rank)
    return ValidationReport(violations=tuple(violations))
