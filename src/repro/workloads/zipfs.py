"""Bounded Zipf distributions (paper Section V-A.2).

Profile generation uses two Zipf distributions: ``Zipf(β, k)`` picks each
profile's rank (complexity) and ``Zipf(α, n)`` picks the resources a
profile monitors, modelling the skew toward popular web sources (α was
estimated at 1.37 for web feeds in [5]).  Exponent 0 degenerates to the
uniform distribution, exactly as the paper specifies.

Values are drawn from ``{1 .. n}`` with ``P(v) ∝ v^-θ``, so small values
are the popular ones.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import WorkloadError


def zipf_probabilities(theta: float, n: int) -> np.ndarray:
    """The probability vector of Zipf(θ, n) over ``{1 .. n}``."""
    if n <= 0:
        raise WorkloadError(f"Zipf support size must be positive, got {n}")
    if theta < 0:
        raise WorkloadError(f"Zipf exponent must be >= 0, got {theta}")
    if theta == 0.0:
        return np.full(n, 1.0 / n)
    weights = np.arange(1, n + 1, dtype=float) ** (-theta)
    return weights / weights.sum()


class ZipfSampler:
    """A seeded sampler over ``{1 .. n}`` with ``P(v) ∝ v^-θ``."""

    def __init__(self, theta: float, n: int, rng: np.random.Generator) -> None:
        self._n = n
        self._theta = theta
        self._probabilities = zipf_probabilities(theta, n)
        self._rng = rng

    @property
    def n(self) -> int:
        return self._n

    @property
    def theta(self) -> float:
        return self._theta

    def sample(self) -> int:
        """One draw from ``{1 .. n}``."""
        return int(self._rng.choice(self._n, p=self._probabilities)) + 1

    def sample_many(self, size: int) -> np.ndarray:
        """``size`` independent draws from ``{1 .. n}``."""
        if size < 0:
            raise WorkloadError(f"sample size must be >= 0, got {size}")
        draws = self._rng.choice(self._n, size=size, p=self._probabilities)
        return draws + 1

    def sample_distinct(self, count: int) -> list[int]:
        """``count`` *distinct* values, Zipf-weighted, from ``{1 .. n}``."""
        if count > self._n:
            raise WorkloadError(
                f"cannot draw {count} distinct values from a support of {self._n}"
            )
        if count == self._n:
            chosen = np.arange(self._n)
        else:
            chosen = self._rng.choice(
                self._n, size=count, replace=False, p=self._probabilities
            )
        return [int(v) + 1 for v in chosen]
