"""Test package for the Web Monitoring 2.0 reproduction.

The package marker matters: modules import shared helpers via
``from tests.conftest import ...``, which requires the repository root on
``sys.path`` — pytest arranges that automatically when the test tree is a
proper package.
"""
