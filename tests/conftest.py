"""Shared fixtures and instance builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.intervals import ComplexExecutionInterval, ExecutionInterval
from repro.core.profile import Profile, ProfileSet
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch


@pytest.fixture
def epoch() -> Epoch:
    """A small default epoch."""
    return Epoch(50)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator."""
    return np.random.default_rng(1234)


def make_ei(
    resource: int,
    start: int,
    finish: int,
    true_start: int | None = None,
    true_finish: int | None = None,
) -> ExecutionInterval:
    """Shorthand EI constructor for tests."""
    return ExecutionInterval(
        resource=resource,
        start=start,
        finish=finish,
        true_start=true_start,
        true_finish=true_finish,
    )


def make_cei(*windows: tuple[int, int, int], weight: float = 1.0) -> ComplexExecutionInterval:
    """Shorthand CEI constructor: ``make_cei((r, s, f), ...)``."""
    eis = tuple(make_ei(r, s, f) for r, s, f in windows)
    return ComplexExecutionInterval(eis=eis, weight=weight)


def make_profiles(*ceis: ComplexExecutionInterval) -> ProfileSet:
    """Wrap CEIs into a single-profile set."""
    return ProfileSet([Profile(pid=0, ceis=list(ceis))])


def unit_budget(epoch: Epoch, c: float = 1.0) -> BudgetVector:
    """A constant budget over the epoch."""
    return BudgetVector.constant(c, len(epoch))


def random_unit_instance(
    rng: np.random.Generator,
    num_resources: int = 6,
    num_chronons: int = 12,
    num_ceis: int = 5,
    max_rank: int = 3,
    no_overlap: bool = False,
    fixed_rank: int | None = None,
    distinct_chronons: bool = False,
) -> ProfileSet:
    """A random P^[1] instance for property-based tests.

    With ``no_overlap`` every (resource, chronon) slot is used at most
    once across the whole instance (no intra-resource overlap).  With
    ``fixed_rank`` every CEI gets exactly that rank (the Figure 10
    uniform-rank family).  With ``distinct_chronons`` a CEI never has
    two EIs at the same chronon, so every CEI is individually feasible
    at C=1 (the implicit setting of the paper's Proposition 2 — see
    tests/test_propositions.py for the counterexample without it).
    """
    used: set[tuple[int, int]] = set()
    ceis = []
    for __ in range(num_ceis):
        if fixed_rank is not None:
            rank = fixed_rank
        else:
            rank = int(rng.integers(1, max_rank + 1))
        eis = []
        chronons_taken: set[int] = set()
        attempts = 0
        while len(eis) < rank and attempts < 200:
            attempts += 1
            resource = int(rng.integers(0, num_resources))
            chronon = int(rng.integers(0, num_chronons))
            if no_overlap and (resource, chronon) in used:
                continue
            if distinct_chronons and chronon in chronons_taken:
                continue
            if any(e.resource == resource and e.start == chronon for e in eis):
                continue
            used.add((resource, chronon))
            chronons_taken.add(chronon)
            eis.append(make_ei(resource, chronon, chronon))
        if eis and len(eis) == rank:
            ceis.append(ComplexExecutionInterval(eis=tuple(eis)))
    return ProfileSet.from_ceis(ceis)


def random_general_instance(
    rng: np.random.Generator,
    num_resources: int = 5,
    num_chronons: int = 20,
    num_ceis: int = 6,
    max_rank: int = 3,
    max_width: int = 4,
) -> ProfileSet:
    """A random instance with EIs of width up to ``max_width``."""
    ceis = []
    for __ in range(num_ceis):
        rank = int(rng.integers(1, max_rank + 1))
        eis = []
        for __r in range(rank):
            resource = int(rng.integers(0, num_resources))
            start = int(rng.integers(0, num_chronons - 1))
            width = int(rng.integers(1, max_width + 1))
            finish = min(num_chronons - 1, start + width - 1)
            eis.append(make_ei(resource, start, finish))
        ceis.append(ComplexExecutionInterval(eis=tuple(eis)))
    return ProfileSet.from_ceis(ceis)
