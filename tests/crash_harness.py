"""Crash-injection harness for the durable streaming proxy.

The robustness claim of :mod:`repro.proxy.durability` is *bit-identical
recovery*: kill the service at any point — between operations or halfway
through writing a journal frame — and the recovered proxy's subsequent
schedule and statistics are indistinguishable from a process that never
died.  This harness proves it the blunt way:

1. The parent derives a deterministic operation script from a seed
   (register / submit / cancel / budget / tick churn, ending in a burst
   of ticks so there is a "subsequent schedule" to compare).
2. A child process (``python tests/crash_harness.py --child ...``)
   replays the script against a :class:`DurableStreamingProxy` and dies
   with ``os._exit`` at the configured kill point:

   * ``--kill-after K`` — between operation K and K+1 (an op boundary);
   * ``--kill-frame K --torn-bytes B`` — after writing only ``B`` bytes
     of the K-th journal frame (a torn write, injected through the WAL's
     ``opener`` hook); ``B = -1`` writes the whole frame and *then* dies,
     exercising the journaled-but-never-applied window.

3. The parent recovers in-process from the same directory.  The journal
   sequence number says exactly how many script operations became
   durable (one frame per operation; a torn frame is an operation that
   never happened).  It replays the remainder of the script and
   fingerprints the result.
4. The fingerprint must equal that of an uninterrupted reference run of
   the full script — schedule pairs, global stats, and per-client stats,
   compared as canonical JSON.

This file is intentionally *not* named ``test_*`` so the tier-1 suite
stays fast; the CI ``crash-recovery`` job runs it by explicit path with
a seed matrix (``REPRO_CRASH_SEEDS``), and ``tests/test_durability.py``
imports one representative cell.

Run directly for a quick local sweep::

    PYTHONPATH=src python -m pytest tests/crash_harness.py -q
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
if str(SRC_ROOT) not in sys.path:  # direct --child execution
    sys.path.insert(0, str(SRC_ROOT))

from repro.core.intervals import ComplexExecutionInterval, ExecutionInterval
from repro.proxy.durability import DurabilityConfig, DurableStreamingProxy

NUM_OPS = 28
NUM_RESOURCES = 5
EXIT_KILLED = 87


# ---------------------------------------------------------------------------
# Deterministic operation scripts
# ---------------------------------------------------------------------------


def make_script(seed: int, num_ops: int = NUM_OPS) -> list[dict]:
    """A deterministic churn script: JSON-able ops, identical everywhere.

    Cancel targets are chosen by global submission ordinal, which is the
    identity that survives process death.  The script tracks ownership
    so cancels are always legal, and ends with a tick burst so killed
    and reference runs have a post-churn schedule to diverge in (if the
    recovery were wrong).
    """
    rng = random.Random(seed)
    ops: list[dict] = []
    alive: dict[str, list[int]] = {}
    next_client = 0
    next_ordinal = 0
    for _ in range(num_ops - 4):
        roll = rng.random()
        if not alive or roll < 0.15:
            name = f"client-{next_client}"
            next_client += 1
            alive[name] = []
            ops.append({"op": "register", "client": name})
        elif roll < 0.55:
            client = rng.choice(sorted(alive))
            windows = []
            for _ in range(rng.randint(1, 3)):
                rank = rng.randint(1, 2)
                cei = []
                for _ in range(rank):
                    start = rng.randint(0, 18)
                    cei.append(
                        [
                            rng.randrange(NUM_RESOURCES),
                            start,
                            start + rng.randint(0, 6),
                        ]
                    )
                windows.append(cei)
            ordinals = list(
                range(next_ordinal, next_ordinal + len(windows))
            )
            next_ordinal += len(windows)
            alive[client].extend(ordinals)
            ops.append({"op": "submit", "client": client, "ceis": windows})
        elif roll < 0.70:
            candidates = [c for c in sorted(alive) if alive[c]]
            if not candidates:
                ops.append({"op": "tick", "n": 1})
                continue
            client = rng.choice(candidates)
            count = rng.randint(1, min(2, len(alive[client])))
            picked = rng.sample(alive[client], count)
            for ordinal in picked:
                alive[client].remove(ordinal)
            ops.append(
                {"op": "cancel", "client": client, "ordinals": sorted(picked)}
            )
        elif roll < 0.78:
            ops.append(
                {"op": "budget", "value": rng.choice([0.5, 1.0, 1.5, 2.0])}
            )
        else:
            ops.append({"op": "tick", "n": rng.randint(1, 3)})
    ops.extend({"op": "tick", "n": 2} for _ in range(4))
    return ops


def _cei_from_windows(windows: list[list[int]]) -> ComplexExecutionInterval:
    return ComplexExecutionInterval(
        eis=tuple(
            ExecutionInterval(resource=r, start=s, finish=f)
            for r, s, f in windows
        )
    )


def apply_op(proxy: DurableStreamingProxy, op: dict) -> None:
    kind = op["op"]
    if kind == "register":
        proxy.register_client(op["client"])
    elif kind == "submit":
        proxy.submit_ceis(
            op["client"], [_cei_from_windows(w) for w in op["ceis"]]
        )
    elif kind == "cancel":
        all_ceis = proxy.submitted_ceis()
        proxy.cancel_ceis(
            op["client"], [all_ceis[ordinal] for ordinal in op["ordinals"]]
        )
    elif kind == "budget":
        proxy.set_budget(op["value"])
    elif kind == "tick":
        proxy.tick(op["n"])
    else:  # pragma: no cover - script generator bug
        raise AssertionError(f"unknown op {kind!r}")


def make_proxy(root: str, *, opener=None) -> DurableStreamingProxy:
    return DurableStreamingProxy(
        DurabilityConfig(root=root, fsync="never", snapshot_every=5),
        budget=1.0,
        opener=opener,
    )


def fingerprint(proxy: DurableStreamingProxy) -> str:
    """Canonical JSON of everything that must be bit-identical."""
    stats = {
        k: v
        for k, v in proxy.stats().items()
        if k not in ("wal_seq", "degraded")
    }
    return json.dumps(
        {
            "pairs": [list(p) for p in proxy.monitor.schedule.pairs()],
            "stats": stats,
            "clients": {
                name: proxy.client_stats(name)
                for name in proxy.client_names
            },
        },
        sort_keys=True,
    )


# ---------------------------------------------------------------------------
# Child: replay the script and die on cue
# ---------------------------------------------------------------------------


class TornWriteOpener:
    """An ``opener`` whose files die partway through the N-th frame write.

    Every journal frame is exactly one ``write()`` call, so "die
    ``torn_bytes`` into frame K" is literal.  ``torn_bytes = -1``
    completes the write first — the frame is durable but the process
    dies before applying it.  The write counter lives on the opener, not
    the file, so it survives the reopen that follows every journal
    truncation.
    """

    def __init__(self, kill_at_write: int, torn_bytes: int) -> None:
        self.kill_at_write = kill_at_write
        self.torn_bytes = torn_bytes
        self.writes = 0

    def __call__(self, path: str, mode: str) -> "TornWriteFile":
        return TornWriteFile(open(path, mode), self)


class TornWriteFile:
    def __init__(self, inner, opener: TornWriteOpener) -> None:
        self._inner = inner
        self._opener = opener

    def write(self, data: bytes) -> int:
        self._opener.writes += 1
        if self._opener.writes == self._opener.kill_at_write:
            torn = self._opener.torn_bytes
            self._inner.write(data if torn < 0 else data[:torn])
            self._inner.flush()
            os._exit(EXIT_KILLED)
        return self._inner.write(data)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def child_main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True)
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--kill-after", type=int, default=None)
    parser.add_argument("--kill-frame", type=int, default=None)
    parser.add_argument("--torn-bytes", type=int, default=1)
    args = parser.parse_args(argv)

    opener = None
    if args.kill_frame is not None:
        opener = TornWriteOpener(args.kill_frame, args.torn_bytes)

    proxy = make_proxy(args.root, opener=opener)
    for index, op in enumerate(make_script(args.seed)):
        if args.kill_after is not None and index == args.kill_after:
            os._exit(EXIT_KILLED)
        apply_op(proxy, op)
    # Survived every op: the kill point was past the script. The parent
    # treats this as a completed run (exit 0) and only checks equality.
    proxy.close()
    return 0


# ---------------------------------------------------------------------------
# Parent: kill, recover, compare
# ---------------------------------------------------------------------------


def run_child(root: str, seed: int, *extra: str) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--child",
            "--root",
            root,
            "--seed",
            str(seed),
            *extra,
        ],
        env=env,
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode in (0, EXIT_KILLED), result.stderr
    return result.returncode


def reference_fingerprint(seed: int) -> str:
    with tempfile.TemporaryDirectory() as root:
        proxy = make_proxy(root)
        for op in make_script(seed):
            apply_op(proxy, op)
        mark = fingerprint(proxy)
        proxy.close()
        return mark


def recover_and_finish(root: str, seed: int) -> str:
    """Recover the killed service, finish the script, fingerprint it."""
    proxy = make_proxy(root)
    applied = proxy.journal_seq  # one journal record per applied op
    script = make_script(seed)
    assert applied <= len(script)
    for op in script[applied:]:
        apply_op(proxy, op)
    mark = fingerprint(proxy)
    proxy.close()
    return mark


def crash_seeds() -> list[int]:
    spec = os.environ.get("REPRO_CRASH_SEEDS", "0,1,2")
    return [int(s) for s in spec.split(",") if s.strip()]


@pytest.mark.parametrize("seed", crash_seeds())
def test_kill_at_op_boundaries(seed: int) -> None:
    """os._exit between ops, early / middle / late: recovery is exact."""
    reference = reference_fingerprint(seed)
    rng = random.Random(1000 + seed)
    kill_points = sorted(
        {2, NUM_OPS // 2, NUM_OPS - 3, rng.randrange(1, NUM_OPS)}
    )
    for kill_after in kill_points:
        with tempfile.TemporaryDirectory() as root:
            code = run_child(root, seed, "--kill-after", str(kill_after))
            assert code == EXIT_KILLED
            assert recover_and_finish(root, seed) == reference, (
                f"seed {seed}: divergence after kill at op {kill_after}"
            )


@pytest.mark.parametrize("seed", crash_seeds())
def test_kill_mid_frame_torn_write(seed: int) -> None:
    """Die partway through a journal frame: the torn tail is dropped and
    recovery is still exact."""
    reference = reference_fingerprint(seed)
    rng = random.Random(2000 + seed)
    cases = [
        (rng.randrange(2, NUM_OPS), 1),  # one byte of the header
        (rng.randrange(2, NUM_OPS), 11),  # header + part of the payload
        (rng.randrange(2, NUM_OPS), -1),  # full frame, then die unapplied
    ]
    for kill_frame, torn_bytes in cases:
        with tempfile.TemporaryDirectory() as root:
            code = run_child(
                root,
                seed,
                "--kill-frame",
                str(kill_frame),
                "--torn-bytes",
                str(torn_bytes),
            )
            assert code == EXIT_KILLED
            assert recover_and_finish(root, seed) == reference, (
                f"seed {seed}: divergence after torn write "
                f"(frame {kill_frame}, {torn_bytes} bytes)"
            )


@pytest.mark.parametrize("seed", crash_seeds())
def test_double_crash(seed: int) -> None:
    """Kill, recover, kill again later, recover again: still exact."""
    reference = reference_fingerprint(seed)
    first, second = 3, NUM_OPS - 4
    with tempfile.TemporaryDirectory() as root:
        assert run_child(root, seed, "--kill-after", str(first)) == EXIT_KILLED
        # The second incarnation recovers in-directory, continues from
        # wherever the journal actually got to, and dies again.
        assert _resume_child(root, seed, second) == EXIT_KILLED
        assert recover_and_finish(root, seed) == reference, (
            f"seed {seed}: divergence after double crash"
        )


def _resume_child(root: str, seed: int, kill_after: int) -> int:
    """Run a child that recovers, continues the script, and dies again."""
    code = (
        "import sys; sys.path.insert(0, {src!r});"
        "import os;"
        "from tests.crash_harness import make_proxy, make_script, apply_op;"
        "proxy = make_proxy({root!r});"
        "script = make_script({seed});"
        "applied = proxy.journal_seq;"
        "ops = list(enumerate(script))[applied:];"
        "[os._exit({exit_code}) if i == {kill} else apply_op(proxy, op)"
        " for i, op in ops];"
        "proxy.close()"
    ).format(
        src=str(SRC_ROOT),
        root=root,
        seed=seed,
        kill=kill_after,
        exit_code=EXIT_KILLED,
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode in (0, EXIT_KILLED), result.stderr
    return result.returncode


if __name__ == "__main__":
    if "--child" in sys.argv:
        argv = [a for a in sys.argv[1:] if a != "--child"]
        sys.exit(child_main(argv))
    sys.exit(pytest.main([__file__, "-q", *sys.argv[1:]]))
