"""Tests for the adaptive expected-gain policy."""

import numpy as np

from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.arrivals import arrivals_from_profiles
from repro.online.monitor import OnlineMonitor
from repro.policies import ExpectedGain, make_policy
from tests.conftest import make_cei


class FakeView:
    def __init__(self, captured=()):
        self._captured = set(captured)

    def is_ei_captured(self, ei):
        return ei.seq in self._captured

    def captured_count(self, cei):
        return sum(1 for ei in cei.eis if ei.seq in self._captured)

    def active_uncaptured_on(self, resource):
        return 0


class TestServiceRateEstimation:
    def test_initial_rate(self):
        assert ExpectedGain(initial_rate=0.4).service_rate == 0.4

    def test_rate_rises_when_all_demand_served(self):
        policy = ExpectedGain(smoothing=0.5, initial_rate=0.2)
        ei = make_cei((0, 0, 5)).eis[0]
        policy.on_chronon_start(0)
        policy.on_ei_activated(ei, 0)
        policy.on_probe(0, 0)
        policy.on_chronon_start(1)  # folds in observed rate 1.0
        assert policy.service_rate > 0.2

    def test_rate_falls_under_starvation(self):
        policy = ExpectedGain(smoothing=0.5, initial_rate=0.8)
        policy.on_chronon_start(0)
        for start in range(4):
            ei = make_cei((start, 0, 5)).eis[0]
            policy.on_ei_activated(ei, 0)
        policy.on_probe(0, 0)  # 1 of 4 served
        policy.on_chronon_start(1)
        assert policy.service_rate < 0.8

    def test_rate_clamped(self):
        policy = ExpectedGain(smoothing=1.0, initial_rate=0.5)
        policy.on_chronon_start(0)
        ei = make_cei((0, 0, 5)).eis[0]
        policy.on_ei_activated(ei, 0)
        policy.on_probe(0, 0)
        policy.on_chronon_start(1)
        assert policy.service_rate <= 0.99


class TestPriorities:
    def test_near_complete_cei_preferred_under_scarcity(self):
        policy = ExpectedGain(initial_rate=0.1)
        pair = make_cei((0, 0, 3), (1, 0, 3))
        view = FakeView(captured={pair.eis[1].seq})
        solo_of_three = make_cei((2, 0, 3), (3, 0, 20), (4, 0, 20))
        # The pair needs only this EI; the rank-3 CEI still needs two more.
        assert policy.priority(pair.eis[0], 0, view) < policy.priority(
            solo_of_three.eis[0], 0, view
        )

    def test_tight_deadline_preferred_all_else_equal(self):
        policy = ExpectedGain(initial_rate=0.3)
        urgent = make_cei((0, 0, 1))
        relaxed = make_cei((1, 0, 30))
        view = FakeView()
        # Probing the urgent EI rescues more probability mass: left alone
        # it would likely die, while the relaxed one has many chances.
        assert policy.priority(urgent.eis[0], 0, view) < policy.priority(
            relaxed.eis[0], 0, view
        )

    def test_gain_is_negative_priority(self):
        policy = ExpectedGain(initial_rate=0.5)
        cei = make_cei((0, 0, 5))
        assert policy.priority(cei.eis[0], 0, FakeView()) <= 0.0

    def test_registered_and_sibling_sensitive(self):
        policy = make_policy("EXPECTED-GAIN")
        assert isinstance(policy, ExpectedGain)
        assert policy.sibling_sensitive()


class TestEndToEnd:
    def build_instance(self, seed=5):
        from repro.traces.noise import perfect_predictions
        from repro.traces.poisson import poisson_trace
        from repro.workloads.generator import GeneratorSpec, generate_profiles
        from repro.workloads.templates import LengthRule

        epoch = Epoch(300)
        rng = np.random.default_rng(seed)
        trace = poisson_trace(100, epoch, 8.0, rng)
        profiles = generate_profiles(
            perfect_predictions(trace), epoch,
            GeneratorSpec(num_profiles=40, rank_max=4),
            LengthRule.window(8), rng,
        )
        return profiles, epoch

    def test_runs_and_respects_budget(self):
        profiles, epoch = self.build_instance()
        budget = BudgetVector.constant(1, len(epoch))
        monitor = OnlineMonitor(ExpectedGain(), budget)
        monitor.run(epoch, arrivals_from_profiles(profiles))
        monitor.check_budget_feasible()
        assert monitor.pool.num_satisfied > 0

    def test_beats_random_baseline(self):
        profiles, epoch = self.build_instance()
        budget = BudgetVector.constant(1, len(epoch))

        def completeness(policy_name: str) -> float:
            monitor = OnlineMonitor(make_policy(policy_name), budget)
            monitor.run(epoch, arrivals_from_profiles(profiles))
            return monitor.pool.num_satisfied / profiles.num_ceis

        assert completeness("EXPECTED-GAIN") > completeness("RANDOM")

    def test_competitive_with_mrsf(self):
        profiles, epoch = self.build_instance(seed=9)
        budget = BudgetVector.constant(1, len(epoch))

        def completeness(policy_name: str) -> float:
            monitor = OnlineMonitor(make_policy(policy_name), budget)
            monitor.run(epoch, arrivals_from_profiles(profiles))
            return monitor.pool.num_satisfied / profiles.num_ceis

        assert completeness("EXPECTED-GAIN") >= 0.8 * completeness("MRSF")
