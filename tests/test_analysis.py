"""Unit tests for the run diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    congestion_timeline,
    diagnose,
    gini_coefficient,
    probe_breakdown,
    resource_load,
)
from repro.core.profile import ProfileSet
from repro.core.schedule import BudgetVector, Schedule
from repro.core.timebase import Epoch
from repro.online.arrivals import arrivals_from_profiles
from repro.online.monitor import OnlineMonitor
from repro.policies import make_policy
from tests.conftest import make_cei


class TestProbeBreakdown:
    def test_productive_probe(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 5))])
        schedule = Schedule.from_pairs([(0, 2)])
        breakdown = probe_breakdown(profiles, schedule)
        assert breakdown.productive == 1
        assert breakdown.wasted == 0

    def test_wasted_probe(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 5))])
        schedule = Schedule.from_pairs([(1, 2), (0, 9)])
        breakdown = probe_breakdown(profiles, schedule)
        assert breakdown.wasted == 2

    def test_doomed_probe(self):
        # CEI needs both EIs; only one is probed -> the probe was doomed.
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 5), (1, 0, 5))])
        schedule = Schedule.from_pairs([(0, 2)])
        breakdown = probe_breakdown(profiles, schedule)
        assert breakdown.doomed == 1
        assert breakdown.productive == 0

    def test_fractions(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 5))])
        schedule = Schedule.from_pairs([(0, 2), (1, 3)])
        breakdown = probe_breakdown(profiles, schedule)
        assert breakdown.productive_fraction == 0.5
        assert breakdown.wasted_fraction == 0.5

    def test_empty_schedule(self):
        breakdown = probe_breakdown(ProfileSet(), Schedule())
        assert breakdown.total == 0
        assert breakdown.productive_fraction == 1.0


class TestCongestionTimeline:
    def test_counts_active_windows(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 1, 3)), make_cei((1, 2, 5))]
        )
        timeline = congestion_timeline(profiles, Epoch(7))
        assert list(timeline) == [0, 1, 2, 2, 1, 1, 0]

    def test_windows_clipped_to_epoch(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 3, 50))])
        timeline = congestion_timeline(profiles, Epoch(5))
        assert list(timeline) == [0, 0, 0, 1, 1]

    def test_empty(self):
        assert congestion_timeline(ProfileSet(), Epoch(3)).sum() == 0


class TestResourceLoad:
    def test_sorted_by_load(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((1, 0, 1)), make_cei((1, 2, 3)), make_cei((0, 0, 1))]
        )
        load = resource_load(profiles)
        assert list(load.items()) == [(1, 2), (0, 1)]

    def test_gini_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_gini_concentrated_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_gini_empty(self):
        assert gini_coefficient([]) == 0.0

    def test_gini_increases_with_alpha(self):
        from repro.traces.noise import perfect_predictions
        from repro.traces.poisson import poisson_trace
        from repro.workloads.generator import GeneratorSpec, generate_profiles
        from repro.workloads.templates import LengthRule

        epoch = Epoch(300)

        def load_gini(alpha: float) -> float:
            rng = np.random.default_rng(4)
            trace = poisson_trace(100, epoch, 8.0, rng)
            profiles = generate_profiles(
                perfect_predictions(trace), epoch,
                GeneratorSpec(num_profiles=40, rank_max=3, alpha=alpha),
                LengthRule.window(5), rng,
            )
            return gini_coefficient(resource_load(profiles).values())

        assert load_gini(1.5) > load_gini(0.0)


class TestDiagnose:
    def test_full_report(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 3)), make_cei((1, 1, 4), (0, 6, 9))]
        )
        epoch = Epoch(12)
        budget = BudgetVector.constant(1, 12)
        monitor = OnlineMonitor(make_policy("MRSF"), budget)
        schedule = monitor.run(epoch, arrivals_from_profiles(profiles))
        report = diagnose(profiles, schedule, epoch, total_budget=budget.total)
        assert report.probes.total == schedule.num_probes
        assert report.peak_congestion >= 1
        assert report.demand_to_budget == pytest.approx(3 / 12)
        text = report.to_text()
        assert "probes" in text and "congestion" in text

    def test_busiest_resources_limited(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((r, 0, 1)) for r in range(10)]
        )
        report = diagnose(profiles, Schedule(), Epoch(3), total_budget=3, top_resources=4)
        assert len(report.busiest_resources) == 4
