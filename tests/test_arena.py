"""Compiled instance arenas must be a pure cache, never a semantic change.

``compile_arena`` freezes one registration walk of a problem instance;
``FastCandidatePool(arena=...)`` replays it.  Everything observable —
schedules, probe counts, captured/satisfied bookkeeping, believed
completeness — must be bit-identical to an incremental pool registering
the same CEIs, which in turn matches the reference engine
(tests/test_fastpath_equivalence.py).  Arenas are also shared across
runs, so two monitors built from one arena must never see each other's
per-run state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.config import MonitorConfig
from repro.online.fastpath import FastCandidatePool
from repro.online.monitor import OnlineMonitor
from repro.policies import make_policy
from repro.sim.arena import compile_arena
from repro.sim.engine import simulate
from tests.conftest import make_cei, random_general_instance

NUM_CHRONONS = 30
POLICIES = ["S-EDF", "MRSF", "M-EDF"]


def _profiles(seed: int, num_ceis: int = 40):
    rng = np.random.default_rng(seed)
    return random_general_instance(
        rng,
        num_resources=8,
        num_chronons=NUM_CHRONONS,
        num_ceis=num_ceis,
        max_rank=4,
        max_width=5,
    )


def _run(policy_name: str, arrivals, engine="vectorized", arena=None, **kwargs):
    monitor = OnlineMonitor(
        policy=make_policy(policy_name),
        budget=BudgetVector.constant(2.0, NUM_CHRONONS),
        config=MonitorConfig(engine=engine),
        arena=arena,
        **kwargs,
    )
    monitor.run(Epoch(NUM_CHRONONS), arrivals)
    return monitor


class TestCompile:
    def test_rows_follow_registration_order(self):
        profiles = _profiles(1)
        arena = compile_arena(profiles)
        assert arena.n_rows == len(arena.row_seq) == arena.npr_seq.size
        assert arena.n_ceis == len(arena.cei_obj)
        # CEIs appear sorted by release; each CEI's rows are contiguous.
        releases = [arena.cei_release[c] for c in range(arena.n_ceis)]
        assert releases == sorted(releases)
        for cidx in range(arena.n_ceis):
            begin, end = arena.cei_row_begin[cidx], arena.cei_row_end[cidx]
            assert all(arena.row_cidx[r] == cidx for r in range(begin, end))
        assert arena.cidx_of_cid.keys() == {c.cid for c in arena.cei_obj}

    def test_mirrors_match_incremental_pool(self):
        profiles = _profiles(2)
        arena = compile_arena(profiles)
        pool = FastCandidatePool()
        for cidx, cei in enumerate(arena.cei_obj):
            pool.register(cei, arena.cei_release[cidx])
        pool.sync_mirrors()
        assert pool.row_seq == arena.row_seq
        assert pool.row_finish == arena.row_finish
        assert pool.row_resource == arena.row_resource
        assert pool.cei_rank == arena.cei_rank
        # Incremental mirrors are capacity-doubled; compare the live prefix.
        n = len(pool.row_seq)
        np.testing.assert_array_equal(pool.npr_seq[:n], arena.npr_seq)
        np.testing.assert_array_equal(pool.npr_static[:n], arena.npr_static)
        assert arena.packable == pool._packable

    def test_immediate_vs_deferred_split(self):
        profiles = _profiles(3)
        arena = compile_arena(profiles)
        for cidx in range(arena.n_ceis):
            release = arena.cei_release[cidx]
            begin, end = arena.cei_row_begin[cidx], arena.cei_row_end[cidx]
            immediate = set(arena.immediate_rows[cidx])
            for row in range(begin, end):
                ei = arena.row_ei[row]
                if ei.start <= release:
                    assert row in immediate
                else:
                    assert row not in immediate
                    assert row in arena.activate_at[ei.start]
                assert row in arena.expire_at[ei.finish]


class TestRunEquivalence:
    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("preemptive", [True, False])
    def test_arena_matches_incremental_and_reference(self, policy_name, preemptive):
        for seed in (4, 5):
            arena = compile_arena(_profiles(seed))
            plain = _run(policy_name, arena.arrivals, preemptive=preemptive)
            backed = _run(
                policy_name, arena.arrivals, arena=arena, preemptive=preemptive
            )
            ref = _run(
                policy_name,
                arena.arrivals,
                engine="reference",
                preemptive=preemptive,
            )
            assert backed.schedule.probes == plain.schedule.probes
            assert backed.schedule.probes == ref.schedule.probes
            assert backed.probes_used == ref.probes_used
            assert backed.pool.num_satisfied == ref.pool.num_satisfied
            assert backed.pool.num_failed == ref.pool.num_failed
            assert backed.believed_completeness == ref.believed_completeness

    def test_reuse_across_runs_is_isolated(self):
        arena = compile_arena(_profiles(6))
        first = _run("MRSF", arena.arrivals, arena=arena)
        _run("M-EDF", arena.arrivals, arena=arena)  # mutates its own state only
        again = _run("MRSF", arena.arrivals, arena=arena)
        assert again.schedule.probes == first.schedule.probes
        assert again.believed_completeness == first.believed_completeness

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_simulate_accepts_arena(self, engine):
        profiles = _profiles(7)
        arena = compile_arena(profiles)
        epoch = Epoch(NUM_CHRONONS)
        budget = BudgetVector.constant(2.0, NUM_CHRONONS)
        cfg = MonitorConfig(engine=engine)
        plain = simulate(profiles, epoch, budget, "MRSF", config=cfg)
        backed = simulate(arena, epoch, budget, "MRSF", config=cfg)
        assert backed.schedule.probes == plain.schedule.probes
        assert backed.completeness == plain.completeness
        assert backed.probes_used == plain.probes_used


class TestRejections:
    def test_foreign_cei(self):
        arena = compile_arena(_profiles(8))
        pool = FastCandidatePool(arena=arena)
        with pytest.raises(ModelError, match="not part of this pool's compiled arena"):
            pool.register(make_cei((0, 1, 2)), 0)

    def test_wrong_release_chronon(self):
        arena = compile_arena(_profiles(9))
        pool = FastCandidatePool(arena=arena)
        cei = arena.cei_obj[0]
        with pytest.raises(ModelError, match="release chronon"):
            pool.register(cei, arena.cei_release[0] + 1)

    def test_double_registration(self):
        arena = compile_arena(_profiles(10))
        pool = FastCandidatePool(arena=arena)
        cei = arena.cei_obj[0]
        pool.register(cei, arena.cei_release[0])
        with pytest.raises(ModelError, match="registered twice"):
            pool.register(cei, arena.cei_release[0])

    def test_reference_engine_rejects_arena(self):
        arena = compile_arena(_profiles(11))
        with pytest.raises(ModelError, match="require the vectorized or auto engine"):
            OnlineMonitor(
                policy=make_policy("MRSF"),
                budget=BudgetVector.constant(2.0, NUM_CHRONONS),
                config=MonitorConfig(engine="reference"),
                arena=arena,
            )
