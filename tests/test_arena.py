"""Compiled instance arenas must be a pure cache, never a semantic change.

``compile_arena`` freezes one registration walk of a problem instance;
``FastCandidatePool(arena=...)`` replays it.  Everything observable —
schedules, probe counts, captured/satisfied bookkeeping, believed
completeness — must be bit-identical to an incremental pool registering
the same CEIs, which in turn matches the reference engine
(tests/test_fastpath_equivalence.py).  Arenas are also shared across
runs, so two monitors built from one arena must never see each other's
per-run state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.config import MonitorConfig
from repro.online.fastpath import FastCandidatePool
from repro.online.monitor import OnlineMonitor
from repro.policies import make_policy
from repro.sim.arena import compile_arena
from repro.sim.engine import simulate
from tests.conftest import make_cei, random_general_instance

NUM_CHRONONS = 30
POLICIES = ["S-EDF", "MRSF", "M-EDF"]


def _profiles(seed: int, num_ceis: int = 40):
    rng = np.random.default_rng(seed)
    return random_general_instance(
        rng,
        num_resources=8,
        num_chronons=NUM_CHRONONS,
        num_ceis=num_ceis,
        max_rank=4,
        max_width=5,
    )


def _run(policy_name: str, arrivals, engine="vectorized", arena=None, **kwargs):
    monitor = OnlineMonitor(
        policy=make_policy(policy_name),
        budget=BudgetVector.constant(2.0, NUM_CHRONONS),
        config=MonitorConfig(engine=engine),
        arena=arena,
        **kwargs,
    )
    monitor.run(Epoch(NUM_CHRONONS), arrivals)
    return monitor


class TestCompile:
    def test_rows_follow_registration_order(self):
        profiles = _profiles(1)
        arena = compile_arena(profiles)
        assert arena.n_rows == len(arena.row_seq) == arena.npr_seq.size
        assert arena.n_ceis == len(arena.cei_obj)
        # CEIs appear sorted by release; each CEI's rows are contiguous.
        releases = [arena.cei_release[c] for c in range(arena.n_ceis)]
        assert releases == sorted(releases)
        for cidx in range(arena.n_ceis):
            begin, end = arena.cei_row_begin[cidx], arena.cei_row_end[cidx]
            assert all(arena.row_cidx[r] == cidx for r in range(begin, end))
        assert arena.cidx_of_cid.keys() == {c.cid for c in arena.cei_obj}

    def test_mirrors_match_incremental_pool(self):
        profiles = _profiles(2)
        arena = compile_arena(profiles)
        pool = FastCandidatePool()
        for cidx, cei in enumerate(arena.cei_obj):
            pool.register(cei, arena.cei_release[cidx])
        pool.sync_mirrors()
        assert pool.row_seq == arena.row_seq
        assert pool.row_finish == arena.row_finish
        assert pool.row_resource == arena.row_resource
        assert pool.cei_rank == arena.cei_rank
        # Incremental mirrors are capacity-doubled; compare the live prefix.
        n = len(pool.row_seq)
        np.testing.assert_array_equal(pool.npr_seq[:n], arena.npr_seq)
        np.testing.assert_array_equal(pool.npr_static[:n], arena.npr_static)
        assert arena.packable == pool._packable

    def test_immediate_vs_deferred_split(self):
        profiles = _profiles(3)
        arena = compile_arena(profiles)
        for cidx in range(arena.n_ceis):
            release = arena.cei_release[cidx]
            begin, end = arena.cei_row_begin[cidx], arena.cei_row_end[cidx]
            immediate = set(arena.immediate_rows[cidx])
            for row in range(begin, end):
                ei = arena.row_ei[row]
                if ei.start <= release:
                    assert row in immediate
                else:
                    assert row not in immediate
                    assert row in arena.activate_at[ei.start]
                assert row in arena.expire_at[ei.finish]


class TestRunEquivalence:
    @pytest.mark.parametrize("policy_name", POLICIES)
    @pytest.mark.parametrize("preemptive", [True, False])
    def test_arena_matches_incremental_and_reference(self, policy_name, preemptive):
        for seed in (4, 5):
            arena = compile_arena(_profiles(seed))
            plain = _run(policy_name, arena.arrivals, preemptive=preemptive)
            backed = _run(
                policy_name, arena.arrivals, arena=arena, preemptive=preemptive
            )
            ref = _run(
                policy_name,
                arena.arrivals,
                engine="reference",
                preemptive=preemptive,
            )
            assert backed.schedule.probes == plain.schedule.probes
            assert backed.schedule.probes == ref.schedule.probes
            assert backed.probes_used == ref.probes_used
            assert backed.pool.num_satisfied == ref.pool.num_satisfied
            assert backed.pool.num_failed == ref.pool.num_failed
            assert backed.believed_completeness == ref.believed_completeness

    def test_reuse_across_runs_is_isolated(self):
        arena = compile_arena(_profiles(6))
        first = _run("MRSF", arena.arrivals, arena=arena)
        _run("M-EDF", arena.arrivals, arena=arena)  # mutates its own state only
        again = _run("MRSF", arena.arrivals, arena=arena)
        assert again.schedule.probes == first.schedule.probes
        assert again.believed_completeness == first.believed_completeness

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_simulate_accepts_arena(self, engine):
        profiles = _profiles(7)
        arena = compile_arena(profiles)
        epoch = Epoch(NUM_CHRONONS)
        budget = BudgetVector.constant(2.0, NUM_CHRONONS)
        cfg = MonitorConfig(engine=engine)
        plain = simulate(profiles, epoch, budget, "MRSF", config=cfg)
        backed = simulate(arena, epoch, budget, "MRSF", config=cfg)
        assert backed.schedule.probes == plain.schedule.probes
        assert backed.completeness == plain.completeness
        assert backed.probes_used == plain.probes_used


class TestRejections:
    def test_foreign_cei(self):
        arena = compile_arena(_profiles(8))
        pool = FastCandidatePool(arena=arena)
        with pytest.raises(ModelError, match="not part of this pool's compiled arena"):
            pool.register(make_cei((0, 1, 2)), 0)

    def test_wrong_arrival_chronon(self):
        arena = compile_arena(_profiles(9))
        pool = FastCandidatePool(arena=arena)
        cei = arena.cei_obj[0]
        with pytest.raises(ModelError, match="arrival chronon"):
            pool.register(cei, arena.cei_release[0] + 1)

    def test_double_registration(self):
        arena = compile_arena(_profiles(10))
        pool = FastCandidatePool(arena=arena)
        cei = arena.cei_obj[0]
        pool.register(cei, arena.cei_release[0])
        with pytest.raises(ModelError, match="registered twice"):
            pool.register(cei, arena.cei_release[0])

    def test_reference_engine_rejects_arena(self):
        arena = compile_arena(_profiles(11))
        with pytest.raises(ModelError, match="require the vectorized or auto engine"):
            OnlineMonitor(
                policy=make_policy("MRSF"),
                budget=BudgetVector.constant(2.0, NUM_CHRONONS),
                config=MonitorConfig(engine="reference"),
                arena=arena,
            )


class TestPatchDeltas:
    """Unit-level guards of the ArenaPatch/apply_patch/adopt_arena layer.

    End-to-end equivalence of churned runs lives in
    tests/test_churn_equivalence.py; these pin the rejection paths.
    """

    def test_register_patch_grows_arena(self):
        from repro.sim.arena import ArenaPatch, apply_patch

        arena = compile_arena(_profiles(20, num_ceis=10))
        old_rows, old_ceis = arena.n_rows, arena.n_ceis
        extra = make_cei((0, 5, 12), (1, 7, 15))
        patched = apply_patch(arena, ArenaPatch.registrations([extra], at=3))
        assert patched.n_ceis == old_ceis + 1
        assert patched.n_rows == old_rows + 2
        assert extra in patched.arrivals[5]  # clamped to release, not 3

    def test_duplicate_cid_rejected(self):
        from repro.sim.arena import ArenaPatch, apply_patch

        arena = compile_arena(_profiles(21, num_ceis=6))
        compiled = arena.cei_obj[0]
        with pytest.raises(ModelError, match="already compiled"):
            apply_patch(arena, ArenaPatch.registrations([compiled], at=0))

    def test_unknown_cancel_rejected(self):
        from repro.sim.arena import ArenaPatch, apply_patch

        arena = compile_arena(_profiles(22, num_ceis=6))
        with pytest.raises(ModelError, match="not in this arena"):
            apply_patch(arena, ArenaPatch(cancel=(10**9,)))

    def test_stale_generation_rejected(self):
        from repro.sim.arena import ArenaPatch, apply_patch

        arena = compile_arena(_profiles(23, num_ceis=6))
        apply_patch(arena, ArenaPatch.registrations([make_cei((0, 2, 8))], at=0))
        # The original object now records fewer CEIs than the shared
        # containers hold: patching it again must be refused.
        with pytest.raises(ModelError, match="newest generation"):
            apply_patch(
                arena, ArenaPatch.registrations([make_cei((1, 2, 8))], at=0)
            )

    def test_foreign_pool_rejected(self):
        from repro.sim.arena import ArenaPatch, apply_patch

        arena = compile_arena(_profiles(24, num_ceis=6))
        other = compile_arena(_profiles(25, num_ceis=6))
        pool = FastCandidatePool(arena=other)
        with pytest.raises(ModelError, match="live pools"):
            apply_patch(
                arena,
                ArenaPatch.registrations([make_cei((0, 2, 8))], at=0),
                pools=(pool,),
            )

    def test_adopt_requires_own_arena_generation(self):
        arena = compile_arena(_profiles(26, num_ceis=6))
        other = compile_arena(_profiles(27, num_ceis=6))
        pool = FastCandidatePool(arena=arena)
        with pytest.raises(ModelError, match="own"):
            pool.adopt_arena(other)
        incremental = FastCandidatePool()
        with pytest.raises(ModelError, match="arena-backed"):
            incremental.adopt_arena(arena)

    def test_expire_before_prunes_timelines(self):
        from repro.sim.arena import ArenaPatch, apply_patch

        arena = compile_arena(_profiles(28, num_ceis=12))
        cutoff = NUM_CHRONONS // 2
        patched = apply_patch(arena, ArenaPatch(expire_before=cutoff))
        assert all(t >= cutoff for t in patched.activate_at)
        assert all(t >= cutoff for t in patched.expire_at)


class TestArrivalEpochValidation:
    def test_out_of_epoch_release_rejected(self):
        from repro.online.arrivals import arrival_map

        cei = make_cei((0, 50, 60))
        with pytest.raises(ModelError, match="outside the epoch"):
            arrival_map([cei], epoch=Epoch(10))

    def test_without_epoch_stays_permissive(self):
        from repro.online.arrivals import arrival_map

        cei = make_cei((0, 50, 60))
        assert arrival_map([cei]) == {50: [cei]}

    def test_simulate_rejects_never_revealed_ceis(self):
        from tests.conftest import make_profiles

        profiles = make_profiles(make_cei((0, 50, 60)))
        with pytest.raises(ModelError, match="never be revealed"):
            simulate(profiles, Epoch(10), budget=1.0, policy="MRSF")
