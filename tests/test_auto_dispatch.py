"""``engine="auto"``: bag-size dispatch between the two fixed engines.

The auto engine is admissible under the same contract as the vectorized
one: every schedule it produces must be bit-for-bit what *either* fixed
engine would have produced, including runs where the dispatch controller
migrates the candidate pool mid-run (both directions, forced here by
monkeypatching the module-level thresholds).  The controller itself
(EWMA, hysteresis band, dwell) and the exact pool migrations get unit
tests; the entry points (``simulate``, ``run_suite``, ``sweep``,
``MonitoringProxy``) get seed-for-seed equality checks; a hypothesis
property sweeps mixed sparse/dense instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import ProfileSet
from repro.core.resource import ResourcePool
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.arrivals import arrivals_from_profiles
from repro.online.config import Engine, MonitorConfig, resolve_config
from repro.online.dispatch import (
    DispatchController,
    fast_pool_from_reference,
    reference_pool_from_fast,
)
from repro.online import dispatch
from repro.online.faults import FailureModel, RetryPolicy
from repro.online.fastpath import FastCandidatePool
from repro.online.monitor import OnlineMonitor
from repro.policies import MRSF, make_policy
from repro.proxy import MonitoringProxy
from repro.sim.arena import compile_arena
from repro.sim.engine import simulate
from repro.sim.runner import run_suite, sweep
from repro.traces.noise import perfect_predictions
from repro.traces.poisson import poisson_trace
from repro.workloads.generator import GeneratorSpec, generate_profiles
from repro.workloads.templates import LengthRule
from tests.conftest import make_cei, random_general_instance

PAPER_POLICIES = ["S-EDF", "MRSF", "M-EDF"]


def _poisson_instance(window, rate, rank_max, chronons=120, seed=3):
    epoch = Epoch(chronons)
    rng = np.random.default_rng(seed)
    trace = poisson_trace(60, epoch, rate, rng)
    profiles = generate_profiles(
        perfect_predictions(trace),
        epoch,
        GeneratorSpec(num_profiles=25, rank_max=rank_max),
        LengthRule.window(window),
        rng,
    )
    return epoch, profiles


SPARSE = (8, 6.0, 4)
DENSE = (60, 30.0, 8)


def _three_way(profiles, epoch, budget, policy, preemptive=True, arena=None):
    """Schedules from reference, vectorized and auto on one instance."""
    results = {}
    for engine in ("reference", "vectorized", "auto"):
        source = arena if (arena is not None and engine != "reference") else profiles
        results[engine] = simulate(
            source, epoch, budget, policy, preemptive=preemptive,
            config=MonitorConfig(engine=engine),
        )
    return results


class TestCoercion:
    def test_auto_is_an_engine(self):
        assert Engine.coerce("auto") is Engine.AUTO
        assert MonitorConfig(engine="auto").engine is Engine.AUTO

    def test_legacy_shim_graduated_to_type_error(self):
        with pytest.raises(TypeError, match=r"simulate: the engine="):
            resolve_config(None, engine="auto", owner="simulate")

    def test_monitor_exposes_auto(self):
        monitor = OnlineMonitor(
            make_policy("MRSF"),
            BudgetVector.constant(1, 10),
            config=MonitorConfig(engine="auto"),
        )
        assert monitor.engine == "auto"
        assert monitor.dispatch_stats is not None


class TestDispatchController:
    def test_ewma_jump_starts_to_first_observation(self):
        controller = DispatchController(fast=False)
        controller.observe(40)
        assert controller.ewma == 40.0

    def test_first_switch_is_dwell_free(self):
        controller = DispatchController(
            fast=False, dense_threshold=10.0, min_dwell=16
        )
        assert controller.observe(50) is True

    def test_dwell_blocks_consecutive_switches(self):
        controller = DispatchController(
            fast=False, dense_threshold=10.0, sparse_threshold=5.0,
            alpha=1.0, min_dwell=3,
        )
        assert controller.observe(50) is True  # first switch: free
        # Immediately sparse again — but dwell pins the engine.
        assert controller.observe(0) is True
        assert controller.observe(0) is True
        assert controller.observe(0) is True
        # Dwell served; the EWMA (alpha=1 tracks the last bag) releases it.
        assert controller.observe(0) is False

    def test_hysteresis_band_holds_the_engine(self):
        controller = DispatchController(
            fast=True, dense_threshold=10.0, sparse_threshold=5.0,
            alpha=1.0, min_dwell=0,
        )
        # In the band [5, 10): no switch either way.
        assert controller.observe(7) is True
        controller.fast = False
        assert controller.observe(7) is False


class TestAutoEquivalence:
    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    @pytest.mark.parametrize("preemptive", [True, False])
    @pytest.mark.parametrize("regime", [SPARSE, DENSE])
    def test_matches_both_engines(self, policy_name, preemptive, regime):
        epoch, profiles = _poisson_instance(*regime)
        budget = BudgetVector.constant(2, len(epoch))
        results = _three_way(
            profiles, epoch, budget, policy_name, preemptive,
            arena=compile_arena(profiles),
        )
        assert (
            results["reference"].schedule.probes
            == results["vectorized"].schedule.probes
            == results["auto"].schedule.probes
        )
        assert (
            results["reference"].completeness == results["auto"].completeness
        )

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    def test_matches_without_arena(self, policy_name):
        # No arena: auto starts on reference and dispatches from observed
        # bags alone.
        epoch, profiles = _poisson_instance(*DENSE)
        budget = BudgetVector.constant(1, len(epoch))
        ref = simulate(profiles, epoch, budget, policy_name,
                       config=MonitorConfig(engine="reference"))
        auto = simulate(profiles, epoch, budget, policy_name,
                        config=MonitorConfig(engine="auto"))
        assert ref.schedule.probes == auto.schedule.probes

    def test_kernel_less_policy_degrades_to_pure_reference(self):
        # use_profile_rank MRSF has no kernel, so auto cannot host it on
        # the fast pool: the run is plain reference, no dispatch ticks.
        epoch, profiles = _poisson_instance(*SPARSE)
        budget = BudgetVector.constant(2, len(epoch))
        policy = MRSF(use_profile_rank=True)
        ref = simulate(profiles, epoch, budget, MRSF(use_profile_rank=True),
                       config=MonitorConfig(engine="reference"))
        auto = simulate(profiles, epoch, budget, policy,
                        config=MonitorConfig(engine="auto"))
        assert ref.schedule.probes == auto.schedule.probes

    def test_auto_with_faults_matches_reference(self):
        # Fault verdicts are pure functions of (resource, chronon,
        # attempt), so the equivalence extends to failing runs.
        epoch, profiles = _poisson_instance(*SPARSE)
        budget = BudgetVector.constant(2, len(epoch))
        outcomes = {}
        for engine in ("reference", "auto"):
            outcomes[engine] = simulate(
                profiles, epoch, budget, "MRSF",
                config=MonitorConfig(
                    engine=engine,
                    faults=FailureModel(rate=0.3, seed=11),
                    retry=RetryPolicy(max_retries=1),
                ),
            )
        assert (
            outcomes["reference"].schedule.probes
            == outcomes["auto"].schedule.probes
        )
        assert (
            outcomes["reference"].probes_failed == outcomes["auto"].probes_failed
        )


class TestMidRunSwitches:
    """Forced migrations: thresholds squeezed around the observed bags."""

    @staticmethod
    def _straddle_thresholds(epoch, profiles, budget, policy_name, monkeypatch):
        """Pin the thresholds around the run's own bag trajectory so the
        EWMA crosses them repeatedly, whatever the instance looks like."""
        monitor = OnlineMonitor(
            make_policy(policy_name), budget,
            config=MonitorConfig(engine="reference"),
        )
        arrivals = arrivals_from_profiles(profiles)
        bags = []
        for chronon in epoch:
            monitor.step(chronon, arrivals.get(chronon, ()))
            bags.append(monitor.pool.num_active())
        positive = [bag for bag in bags if bag > 0]
        assert positive, "degenerate instance: no non-empty bags"
        dense = float(np.percentile(positive, 60))
        sparse = min(float(np.percentile(positive, 40)), dense - 0.5)
        monkeypatch.setattr(dispatch, "DENSE_THRESHOLD", dense)
        monkeypatch.setattr(dispatch, "SPARSE_THRESHOLD", sparse)
        monkeypatch.setattr(dispatch, "MIN_DWELL", 2)

    def _run_auto(self, epoch, profiles, budget, policy_name, arena=None):
        monitor = OnlineMonitor(
            make_policy(policy_name),
            budget,
            config=MonitorConfig(engine="auto"),
            arena=arena,
        )
        monitor.run(
            epoch,
            arena.arrivals if arena is not None
            else arrivals_from_profiles(profiles),
        )
        return monitor

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    def test_forced_switches_keep_schedules_identical(
        self, policy_name, monkeypatch
    ):
        epoch, profiles = _poisson_instance(*SPARSE)
        budget = BudgetVector.constant(2, len(epoch))
        reference = simulate(profiles, epoch, budget, policy_name,
                             config=MonitorConfig(engine="reference"))
        self._straddle_thresholds(epoch, profiles, budget, policy_name,
                                  monkeypatch)
        monitor = self._run_auto(epoch, profiles, budget, policy_name)
        assert monitor.dispatch_stats.switches > 0
        assert monitor.schedule.probes == reference.schedule.probes

    def test_switches_happen_in_both_directions(self, monkeypatch):
        epoch, profiles = _poisson_instance(*SPARSE)
        budget = BudgetVector.constant(2, len(epoch))
        self._straddle_thresholds(epoch, profiles, budget, "S-EDF",
                                  monkeypatch)
        monitor = self._run_auto(epoch, profiles, budget, "S-EDF")
        stats = monitor.dispatch_stats
        # At least one promotion and one demotion: more switches than a
        # single one-way migration.
        assert stats.switches >= 2
        assert stats.reference_chronons > 0
        assert stats.vectorized_chronons > 0

    def test_dense_arena_starts_vectorized(self):
        epoch, profiles = _poisson_instance(*DENSE)
        arena = compile_arena(profiles)
        assert arena.mean_bag >= dispatch.DENSE_THRESHOLD
        budget = BudgetVector.constant(1, len(epoch))
        monitor = self._run_auto(epoch, profiles, budget, "MRSF", arena=arena)
        assert monitor.dispatch_stats.initial_engine == "vectorized"

    def test_sparse_arena_starts_reference(self):
        epoch, profiles = _poisson_instance(*SPARSE)
        arena = compile_arena(profiles)
        assert arena.mean_bag < dispatch.DENSE_THRESHOLD
        budget = BudgetVector.constant(2, len(epoch))
        monitor = self._run_auto(epoch, profiles, budget, "MRSF", arena=arena)
        assert monitor.dispatch_stats.initial_engine == "reference"


class TestMigrations:
    """The exact pool rebuilds behind a switch."""

    def _reference_pool_mid_run(self, chronons_run=40):
        epoch, profiles = _poisson_instance(*SPARSE)
        monitor = OnlineMonitor(
            make_policy("MRSF"),
            BudgetVector.constant(2, len(epoch)),
            config=MonitorConfig(engine="reference"),
        )
        arrivals = arrivals_from_profiles(profiles)
        for chronon in range(chronons_run):
            monitor.step(chronon, arrivals.get(chronon, ()))
        return monitor.pool, chronons_run - 1

    def test_round_trip_preserves_observable_state(self):
        ref, now = self._reference_pool_mid_run()
        back = reference_pool_from_fast(fast_pool_from_reference(ref, now), now)
        assert set(back._states) == set(ref._states)
        for cid, st in ref._states.items():
            assert back._states[cid].captured == st.captured
            assert back._states[cid].satisfied == st.satisfied
            assert back._states[cid].failed == st.failed
        assert (
            {ei.seq for ei in back._active.values()}
            == {ei.seq for ei in ref._active.values()}
        )
        assert back._num_registered == ref._num_registered
        assert back._num_satisfied == ref._num_satisfied
        assert back._num_failed == ref._num_failed

    def test_fast_rebuild_matches_bag_and_counters(self):
        ref, now = self._reference_pool_mid_run()
        fast = fast_pool_from_reference(ref, now)
        assert fast.num_active() == ref.num_active()
        assert (
            {fast.row_seq[row] for row in fast.active_set}
            == {ei.seq for ei in ref._active.values()}
        )
        assert fast.num_registered == ref.num_registered
        assert fast.num_satisfied == ref.num_satisfied

    def test_rebuilt_fast_pool_accepts_new_registrations(self):
        ref, now = self._reference_pool_mid_run()
        fast = fast_pool_from_reference(ref, now)
        before = fast.num_registered
        fast.register(make_cei((0, now + 2, now + 6)), now + 1)
        assert fast.num_registered == before + 1


class TestEntryPoints:
    EPOCH = Epoch(15)

    @staticmethod
    def _factory(rng):
        return random_general_instance(
            rng, num_resources=4, num_chronons=15, num_ceis=10,
            max_rank=2, max_width=3,
        )

    def test_run_suite_auto_matches_reference(self):
        budget = BudgetVector.constant(1, 15)
        outcomes = {
            engine: run_suite(
                self._factory, self.EPOCH, budget, [("MRSF", True)],
                repetitions=3, config=MonitorConfig(engine=engine),
            )["MRSF(P)"]
            for engine in ("reference", "auto")
        }
        assert (
            outcomes["reference"].completeness_mean
            == outcomes["auto"].completeness_mean
        )
        assert outcomes["reference"].probes_mean == outcomes["auto"].probes_mean

    def test_sweep_auto_matches_reference(self):
        kwargs = dict(
            make_instance_for=lambda value: self._factory,
            epoch_for=lambda value: self.EPOCH,
            budget_for=lambda value: BudgetVector.constant(value, 15),
            policies=[("S-EDF", True)],
            repetitions=2,
        )
        via_auto = sweep([1, 2], config=MonitorConfig(engine="auto"), **kwargs)
        via_ref = sweep([1, 2], config=MonitorConfig(engine="reference"), **kwargs)
        for value in (1, 2):
            assert (
                via_auto[value]["S-EDF(P)"].completeness_mean
                == via_ref[value]["S-EDF(P)"].completeness_mean
            )

    def test_proxy_auto_matches_reference(self):
        pool = ResourcePool.from_names(["A", "B", "C"])
        proxy = MonitoringProxy(
            Epoch(20), pool, budget=1.0, policy="MRSF",
            config=MonitorConfig(engine="auto"),
        )
        assert proxy.engine == "auto"
        proxy.registry.register("ana")
        proxy.submit_ceis(
            "ana",
            [make_cei((0, 0, 5), (1, 3, 9)), make_cei((2, 6, 12))],
        )
        via_auto = proxy.run()
        via_ref = proxy.run(config=MonitorConfig(engine="reference"))
        assert via_auto.schedule.probes == via_ref.schedule.probes

    def test_proxy_legacy_engine_keyword_raises(self):
        pool = ResourcePool.from_names(["A", "B"])
        with pytest.raises(TypeError, match=r"MonitoringProxy: the engine="):
            MonitoringProxy(Epoch(10), pool, budget=1.0, engine="auto")


class TestBoundaries:
    def test_grow_rows_from_zero_capacity_terminates(self):
        # A consistent zero-capacity state (what an arena of zero rows
        # would produce without the max(n, 1) floor): the doubling loop
        # must not stall at zero.
        pool = FastCandidatePool()
        pool._row_cap = 0
        for name in ("npr_seq", "npr_finish", "npr_finish_f",
                     "npr_resource", "npr_cidx", "npr_static"):
            setattr(pool, name, np.zeros(0, getattr(pool, name).dtype))
        pool.np_active = np.zeros(0, bool)
        pool._grow_rows(5)
        assert pool._row_cap >= 5
        assert pool.npr_seq.size >= 5

    def test_grow_ceis_from_zero_capacity_terminates(self):
        pool = FastCandidatePool()
        pool._cei_cap = 0
        for name in ("npc_rank_f", "npc_captured_f", "npc_weight",
                     "npc_medf_s_f", "npc_medf_open_f"):
            setattr(pool, name, np.zeros(0, np.float64))
        pool._grow_ceis(3)
        assert pool._cei_cap >= 3
        assert pool.npc_rank_f.size >= 3

    def test_empty_arena_pool_has_unit_caps(self):
        # The constructor floors arena-sized caps at one, so the doubling
        # loop in _grow_rows always makes progress.
        pool = FastCandidatePool(arena=compile_arena(ProfileSet()))
        assert pool._row_cap >= 1
        assert pool._cei_cap >= 1

    def test_empty_arena_runs_on_auto(self):
        arena = compile_arena(ProfileSet())
        assert arena.mean_bag == 0.0
        monitor = OnlineMonitor(
            make_policy("MRSF"),
            BudgetVector.constant(1, 10),
            config=MonitorConfig(engine="auto"),
            arena=arena,
        )
        monitor.run(Epoch(10), arena.arrivals)
        assert monitor.probes_used == 0
        assert monitor.dispatch_stats.idle_skipped == 10

    def test_single_row_instance_all_engines(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 2, 6))])
        epoch = Epoch(10)
        budget = BudgetVector.constant(1, 10)
        results = _three_way(
            profiles, epoch, budget, "S-EDF", arena=compile_arena(profiles)
        )
        probes = results["reference"].schedule.probes
        assert probes == results["vectorized"].schedule.probes
        assert probes == results["auto"].schedule.probes
        assert results["auto"].probes_used == 1


class TestBatchedRun:
    """run() batching/skipping is invisible in every observable."""

    @pytest.mark.parametrize("engine", ["reference", "vectorized", "auto"])
    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    def test_run_equals_step_loop(self, engine, policy_name):
        epoch, profiles = _poisson_instance(*SPARSE)
        budget = BudgetVector.constant(2, len(epoch))
        arrivals = arrivals_from_profiles(profiles)

        stepped = OnlineMonitor(
            make_policy(policy_name), budget, config=MonitorConfig(engine=engine)
        )
        for chronon in epoch:
            stepped.step(chronon, arrivals.get(chronon, ()))

        batched = OnlineMonitor(
            make_policy(policy_name), budget, config=MonitorConfig(engine=engine)
        )
        batched.run(epoch, arrivals)

        assert batched.schedule.probes == stepped.schedule.probes
        assert batched.probes_used == stepped.probes_used
        assert batched.believed_completeness == stepped.believed_completeness

    def test_idle_chronons_are_skipped(self):
        # A gap between two windows: the run loop must hop over it.
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 2)), make_cei((1, 40, 44))]
        )
        monitor = OnlineMonitor(
            make_policy("S-EDF"),
            BudgetVector.constant(1, 50),
            config=MonitorConfig(engine="auto"),
        )
        monitor.run(Epoch(50), arrivals_from_profiles(profiles))
        assert monitor.dispatch_stats.idle_skipped > 20
        assert monitor.probes_used == 2

    def test_custom_chronon_hooks_disable_batching(self):
        # A policy overriding on_chronon_start must see every chronon.
        seen = []

        class Spy(type(make_policy("S-EDF"))):
            def on_chronon_start(self, chronon):
                seen.append(chronon)

        monitor = OnlineMonitor(
            Spy(), BudgetVector.constant(1, 12),
            config=MonitorConfig(engine="auto"),
        )
        monitor.run(Epoch(12), {})
        assert seen == list(range(12))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_mixed_density_equivalence(seed):
    """Random mixed instances: all three engines, one schedule."""
    rng = np.random.default_rng(seed)
    # Sparse scatter plus a dense clump in the same instance, so the
    # dispatch EWMA crosses regimes within a run once thresholds allow.
    sparse_part = random_general_instance(
        rng, num_resources=6, num_chronons=40, num_ceis=8,
        max_rank=2, max_width=4,
    )
    dense_part = random_general_instance(
        rng, num_resources=6, num_chronons=18, num_ceis=30,
        max_rank=3, max_width=12,
    )
    ceis = [cei for part in (sparse_part, dense_part)
            for profile in part for cei in profile.ceis]
    profiles = ProfileSet.from_ceis(ceis)
    epoch = Epoch(40)
    budget = BudgetVector.constant(2, 40)
    old = (dispatch.DENSE_THRESHOLD, dispatch.SPARSE_THRESHOLD, dispatch.MIN_DWELL)
    dispatch.DENSE_THRESHOLD, dispatch.SPARSE_THRESHOLD = 12.0, 6.0
    dispatch.MIN_DWELL = 3
    try:
        results = _three_way(
            profiles, epoch, budget, "MRSF", arena=compile_arena(profiles)
        )
    finally:
        (dispatch.DENSE_THRESHOLD, dispatch.SPARSE_THRESHOLD,
         dispatch.MIN_DWELL) = old
    assert (
        results["reference"].schedule.probes
        == results["vectorized"].schedule.probes
        == results["auto"].schedule.probes
    )
