"""Unit tests for the candidate pool (cands(η) / cands(I) maintenance)."""

import pytest

from repro.core.errors import ModelError
from repro.core.intervals import ComplexExecutionInterval, Semantics
from repro.core.resource import Resource, ResourcePool
from repro.online.candidates import CandidatePool
from repro.online.fastpath import FastCandidatePool
from tests.conftest import make_cei, make_ei


class TestRegistration:
    def test_register_activates_current_eis(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 5), (1, 3, 8))
        activated = pool.register(c, 0)
        assert [ei.resource for ei in activated] == [0]
        assert pool.num_active() == 1

    def test_future_eis_activate_later(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 5), (1, 3, 8))
        pool.register(c, 0)
        opened = pool.open_windows(3)
        assert [ei.resource for ei in opened] == [1]
        assert pool.num_active() == 2

    def test_double_registration_rejected(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 5))
        pool.register(c, 0)
        with pytest.raises(ModelError):
            pool.register(c, 1)

    def test_dead_on_arrival(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 2), (1, 5, 8))
        assert pool.register(c, 4) == []
        assert pool.num_failed == 1
        assert pool.num_active() == 0

    def test_late_arrival_with_enough_spares(self):
        c = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 2), make_ei(1, 5, 8)),
            semantics=Semantics.ANY,
        )
        pool = CandidatePool()
        activated = pool.register(c, 5)
        assert [ei.resource for ei in activated] == [1]
        assert pool.num_failed == 0


class TestCapture:
    def test_capture_resource_takes_all_active_eis(self):
        pool = CandidatePool()
        a = make_cei((0, 0, 5))
        b = make_cei((0, 0, 9), (1, 0, 9))
        pool.register(a, 0)
        pool.register(b, 0)
        captured, touched = pool.capture_resource(0, 2)
        assert len(captured) == 2
        assert pool.num_satisfied == 1  # CEI a completed
        assert pool.captured_count(b) == 1

    def test_capture_unknown_resource_is_noop(self):
        pool = CandidatePool()
        assert pool.capture_resource(9, 0) == ([], [])

    def test_satisfied_k_of_n_drops_leftover_eis(self):
        c = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 9), make_ei(1, 0, 9), make_ei(2, 0, 9)),
            semantics=Semantics.AT_LEAST,
            required=1,
        )
        pool = CandidatePool()
        pool.register(c, 0)
        pool.capture_resource(1, 0)
        assert pool.num_satisfied == 1
        assert pool.num_active() == 0

    def test_pending_eis_of_satisfied_cei_never_activate(self):
        c = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 9), make_ei(1, 5, 9)),
            semantics=Semantics.ANY,
        )
        pool = CandidatePool()
        pool.register(c, 0)
        pool.capture_resource(0, 0)
        assert pool.open_windows(5) == []

    def test_is_ei_captured(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 5), (1, 0, 5))
        pool.register(c, 0)
        pool.capture_resource(0, 0)
        assert pool.is_ei_captured(c.eis[0])
        assert not pool.is_ei_captured(c.eis[1])

    def test_unregistered_cei_reports_zero_captured(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 5))
        assert pool.captured_count(c) == 0
        assert not pool.is_ei_captured(c.eis[0])


class TestExpiry:
    def test_expired_ei_kills_and_cleans_cei(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 2), (1, 0, 9))
        pool.register(c, 0)
        expired = pool.close_windows(2)
        assert [ei.resource for ei in expired] == [0]
        assert pool.num_failed == 1
        assert pool.num_active() == 0  # sibling dropped too

    def test_captured_ei_does_not_expire(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 2))
        pool.register(c, 0)
        pool.capture_resource(0, 1)
        assert pool.close_windows(2) == []
        assert pool.num_failed == 0

    def test_k_of_n_survives_one_expiry(self):
        c = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 2), make_ei(1, 0, 9), make_ei(2, 0, 9)),
            semantics=Semantics.AT_LEAST,
            required=2,
        )
        pool = CandidatePool()
        pool.register(c, 0)
        pool.close_windows(2)
        assert pool.num_failed == 0
        assert pool.num_active() == 2

    def test_k_of_n_fails_when_spares_run_out(self):
        c = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 2), make_ei(1, 0, 2), make_ei(2, 0, 9)),
            semantics=Semantics.AT_LEAST,
            required=2,
        )
        pool = CandidatePool()
        pool.register(c, 0)
        pool.close_windows(2)  # two EIs expire together; only 1 usable left
        assert pool.num_failed == 1
        assert pool.num_active() == 0

    def test_pending_ei_of_failed_cei_never_activates(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 2), (1, 6, 9))
        pool.register(c, 0)
        pool.close_windows(2)
        assert pool.open_windows(6) == []


class TestViews:
    def test_active_uncaptured_on(self):
        pool = CandidatePool()
        pool.register(make_cei((0, 0, 5)), 0)
        pool.register(make_cei((0, 0, 7), (1, 0, 7)), 0)
        assert pool.active_uncaptured_on(0) == 2
        assert pool.active_uncaptured_on(1) == 1
        assert pool.active_uncaptured_on(9) == 0

    def test_split_by_prior_capture(self):
        pool = CandidatePool()
        started = make_cei((0, 0, 9), (1, 0, 9))
        fresh = make_cei((2, 0, 9))
        pool.register(started, 0)
        pool.register(fresh, 0)
        pool.capture_resource(0, 0)
        plus, minus = pool.split_by_prior_capture(pool.active_eis())
        assert [ei.resource for ei in plus] == [1]
        assert [ei.resource for ei in minus] == [2]

    def test_counts(self):
        pool = CandidatePool()
        pool.register(make_cei((0, 0, 1)), 0)
        pool.register(make_cei((1, 0, 1)), 0)
        pool.capture_resource(0, 0)
        pool.close_windows(1)
        assert pool.num_registered == 2
        assert pool.num_satisfied == 1
        assert pool.num_failed == 1
        assert pool.num_open == 0

    def test_state_of(self):
        pool = CandidatePool()
        c = make_cei((0, 0, 1))
        assert pool.state_of(c) is None
        pool.register(c, 0)
        state = pool.state_of(c)
        assert state is not None and state.residual == 1


class TestPublicCaptureAPIs:
    """capture_single / pushable_resources — shared by both engines."""

    @pytest.fixture(params=[CandidatePool, FastCandidatePool])
    def pool(self, request):
        return request.param()

    def test_capture_single_takes_exactly_one_ei(self, pool):
        first = make_cei((0, 0, 9))
        second = make_cei((0, 0, 9))
        pool.register(first, 0)
        pool.register(second, 0)
        captured, touched = pool.capture_single(first.eis[0])
        assert [ei.seq for ei in captured] == [first.eis[0].seq]
        assert [cei.cid for cei in touched] == [first.cid]
        # The overlapping EI on the same resource stays probe-able.
        assert pool.is_active(second.eis[0])
        assert pool.num_satisfied == 1

    def test_capture_single_inactive_is_noop(self, pool):
        cei = make_cei((0, 5, 9))
        pool.register(cei, 0)  # window not yet open
        assert pool.capture_single(cei.eis[0]) == ([], [])
        assert pool.num_satisfied == 0

    def test_capture_single_satisfied_cei_drops_spares(self, pool):
        cei = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 9), make_ei(1, 0, 9)),
            semantics=Semantics.AT_LEAST,
            required=1,
        )
        pool.register(cei, 0)
        pool.capture_single(cei.eis[0])
        assert pool.num_satisfied == 1
        assert not pool.is_active(cei.eis[1])

    def test_pushable_resources(self, pool):
        resources = ResourcePool(
            [
                Resource(rid=0, name="a", push_enabled=True),
                Resource(rid=1, name="b", push_enabled=False),
                Resource(rid=2, name="c", push_enabled=True),
            ]
        )
        pool.register(make_cei((0, 0, 9), (1, 0, 9)), 0)
        pool.register(make_cei((2, 5, 9)), 0)  # not yet active
        assert sorted(pool.pushable_resources(resources)) == [0]
        pool.open_windows(5)
        assert sorted(pool.pushable_resources(resources)) == [0, 2]
        pool.capture_resource(0, 6)
        assert sorted(pool.pushable_resources(resources)) == [2]
