"""Tests for the ASCII chart renderers."""

import pytest

from repro.core.errors import ReproError
from repro.experiments.common import ExperimentResult
from repro.sim.charts import bar_chart, chart_experiment, line_chart, sparkline


class TestSparkline:
    def test_shape(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_scales_to_max(self):
        chart = bar_chart(["a", "bb"], [1.0, 0.5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        chart = bar_chart(["x", "longer"], [1, 1])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title(self):
        assert bar_chart(["a"], [1], title="T").splitlines()[0] == "T"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            bar_chart(["a"], [1, 2])

    def test_all_zero_values(self):
        chart = bar_chart(["a"], [0.0])
        assert "#" not in chart


class TestLineChart:
    def test_renders_markers_and_legend(self):
        chart = line_chart([0, 1, 2], {"up": [0, 1, 2], "down": [2, 1, 0]})
        assert "a = up" in chart and "b = down" in chart
        assert "a" in chart and "b" in chart

    def test_extremes_on_borders(self):
        chart = line_chart([0, 1], {"s": [0.0, 1.0]}, height=5, width=10)
        lines = chart.splitlines()
        assert "1.000" in lines[0]
        assert "0.000" in lines[-2]

    def test_needs_two_points(self):
        with pytest.raises(ReproError):
            line_chart([0], {"s": [1.0]})

    def test_mismatched_series_rejected(self):
        with pytest.raises(ReproError):
            line_chart([0, 1], {"s": [1.0]})

    def test_flat_series_ok(self):
        chart = line_chart([0, 1, 2], {"s": [3.0, 3.0, 3.0]})
        assert "s" in chart


class TestChartExperiment:
    def test_charts_selected_columns(self):
        result = ExperimentResult(
            experiment="demo",
            headers=["x", "a", "b"],
            rows=[[1, 0.1, 0.9], [2, 0.2, 0.8], [3, 0.3, 0.7]],
        )
        chart = chart_experiment(result, "x", ["a", "b"])
        assert "demo" in chart
        assert "a = a" in chart
