"""Churn equivalence: incremental deltas == compile from scratch.

The contract of the delta layer (``repro.sim.arena.ArenaPatch``) and the
rolling-horizon driver (``repro.online.streaming.StreamingMonitor``) is
that a run that *grows* — CEIs registered and withdrawn while the clock
is moving — is bit-identical to a run whose final timeline was known in
advance and compiled from scratch.  These tests script register/cancel
timelines and replay them three ways:

* queue-only incremental (no arena), on every engine;
* arena-backed incremental, churn applied as :class:`ArenaPatch` deltas
  (vectorized and auto — the reference engine rejects arenas);
* from-scratch: the complete arrival map compiled into one arena.

All replays must agree on the schedule and on every counter, including
shedding and health statistics when those subsystems are enabled.  A
hypothesis property extends the scripted cases to random churn.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import Profile, ProfileSet
from repro.core.resource import ResourcePool
from repro.online import MonitorConfig
from repro.online.faults import FailureModel
from repro.online.health import HealthConfig
from repro.online.shedding import SheddingConfig
from repro.online.streaming import StreamingMonitor
from repro.sim.arena import compile_arena
from tests.conftest import make_cei

ENGINES = ["reference", "vectorized", "auto"]
ARENA_ENGINES = ["vectorized", "auto"]

HORIZON = 30
NUM_RESOURCES = 6

# A churn script is declarative so each replay can instantiate its own
# CEI objects in the same creation order (tie-breaking uses ``seq``, so
# relative order must match across replays; object identity must not).
#
#   initial: CEI specs submitted before the clock starts
#   events:  (chronon, "submit", [specs...]) or (chronon, "cancel", [idx...])
#            where idx indexes the global creation order (initial first,
#            then each submit batch in event order).
SCRIPT_BASIC = {
    "initial": [((0, 0, 6),), ((1, 2, 9), (2, 4, 12)), ((3, 5, 11),)],
    "events": [
        (3, "submit", [((4, 3, 10),), ((5, 6, 14), (0, 8, 16))]),
        (7, "cancel", [1]),
        (10, "submit", [((2, 12, 20),), ((1, 15, 22),)]),
        (14, "cancel", [4, 5]),
        (18, "submit", [((3, 18, 26), (4, 20, 27)), ((0, 40, 50),)]),
        (22, "cancel", [7]),
    ],
}

SCRIPT_OVERLOAD = {
    # Enough simultaneous demand to trip an aggressive shedder.
    "initial": [((r % NUM_RESOURCES, 0, 12), (r % NUM_RESOURCES, 5, 19))
                for r in range(10)],
    "events": [
        (4, "submit", [((r % NUM_RESOURCES, 4, 16),) for r in range(6)]),
        (8, "cancel", [0, 1, 2]),
        (12, "submit", [((2, 12, 24), (3, 14, 26))]),
    ],
}


def _instantiate(script):
    """Fresh CEI objects for one replay, in deterministic creation order."""
    index = [make_cei(*spec) for spec in script["initial"]]
    initial = list(index)
    events = []
    for chronon, kind, payload in script["events"]:
        if kind == "submit":
            batch = [make_cei(*spec) for spec in payload]
            index.extend(batch)
            events.append((chronon, "submit", batch))
        else:
            events.append((chronon, "cancel", list(payload)))
    return initial, events, index


def _drive(monitor, events, index):
    for t in range(HORIZON):
        for chronon, kind, payload in events:
            if chronon != t:
                continue
            if kind == "submit":
                monitor.submit(payload)
            else:
                monitor.cancel([index[i] for i in payload])
        monitor.advance(1)
    return monitor


def _config(engine, extra=None):
    return MonitorConfig(engine=engine, **(extra or {}))


def _run_queue(script, engine, extra=None):
    """Incremental replay with no arena: churn rides the reveal queue."""
    initial, events, index = _instantiate(script)
    monitor = StreamingMonitor(
        "MRSF",
        budget=1.0,
        resources=ResourcePool.uniform(NUM_RESOURCES),
        config=_config(engine, extra),
    )
    monitor.submit(initial)
    return _drive(monitor, events, index)


def _run_arena_incremental(script, engine, extra=None, compact_every=0):
    """Arena-backed replay: churn becomes ArenaPatch deltas."""
    initial, events, index = _instantiate(script)
    arena = compile_arena(ProfileSet([Profile(pid=0, ceis=list(initial))]))
    monitor = StreamingMonitor(
        "MRSF",
        budget=1.0,
        resources=ResourcePool.uniform(NUM_RESOURCES),
        config=_config(engine, extra),
        arena=arena,
        compact_every=compact_every,
    )
    return _drive(monitor, events, index)


def _run_from_scratch(script, engine, extra=None):
    """The final timeline compiled up front: the equivalence baseline."""
    initial, events, index = _instantiate(script)
    arrivals = {}
    for cei in initial:
        arrivals.setdefault(cei.release, []).append(cei)
    for chronon, kind, payload in events:
        if kind == "submit":
            for cei in payload:
                arrivals.setdefault(max(chronon, cei.release), []).append(cei)
    arena = compile_arena(
        ProfileSet([Profile(pid=0, ceis=list(index))]), arrivals=arrivals
    )
    monitor = StreamingMonitor(
        "MRSF",
        budget=1.0,
        resources=ResourcePool.uniform(NUM_RESOURCES),
        config=_config(engine, extra),
        arena=arena,
    )
    # Only the cancels replay; every registration is already compiled in.
    cancels = [e for e in events if e[1] == "cancel"]
    return _drive(monitor, cancels, index)


def _fingerprint(monitor):
    pool = monitor.pool
    return {
        "schedule": sorted(monitor.schedule.pairs()),
        "probes_used": monitor.probes_used,
        "probes_failed": monitor.probes_failed,
        "satisfied": pool.num_satisfied,
        "failed": pool.num_failed,
        "cancelled": pool.num_cancelled,
        "open": pool.num_open,
        "believed": monitor.believed_completeness,
    }


class TestScriptedChurn:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_queue_incremental_matches_from_scratch(self, engine):
        baseline = _fingerprint(_run_from_scratch(SCRIPT_BASIC, "vectorized"))
        assert _fingerprint(_run_queue(SCRIPT_BASIC, engine)) == baseline

    @pytest.mark.parametrize("engine", ARENA_ENGINES)
    def test_arena_incremental_matches_from_scratch(self, engine):
        baseline = _fingerprint(_run_from_scratch(SCRIPT_BASIC, engine))
        assert (
            _fingerprint(_run_arena_incremental(SCRIPT_BASIC, engine))
            == baseline
        )

    @pytest.mark.parametrize("compact_every", [1, 5, 13])
    def test_compaction_never_changes_results(self, compact_every):
        baseline = _fingerprint(_run_from_scratch(SCRIPT_BASIC, "vectorized"))
        run = _run_arena_incremental(
            SCRIPT_BASIC, "vectorized", compact_every=compact_every
        )
        assert _fingerprint(run) == baseline

    def test_incremental_arena_converges_to_from_scratch_arena(self):
        """After the replay the patched arena records the same timeline
        membership as the arena compiled from the final state."""
        run = _run_arena_incremental(SCRIPT_BASIC, "vectorized")
        scratch = _run_from_scratch(SCRIPT_BASIC, "vectorized")
        assert run.arena is not None and scratch.arena is not None
        assert run.arena.n_ceis == scratch.arena.n_ceis
        assert run.arena.n_rows == scratch.arena.n_rows
        assert len(run.arena.cancelled_cids) == len(scratch.arena.cancelled_cids)


class TestChurnUnderSubsystems:
    SHED = {
        "shedding": SheddingConfig(
            overload_on=1.2, overload_off=1.0, sustain=2, target_ratio=1.0
        )
    }
    FAULTY = {
        "faults": FailureModel(rate=0.25, seed=11),
        "health": HealthConfig(),
    }

    @pytest.mark.parametrize("engine", ARENA_ENGINES)
    def test_shedding_stats_identical_under_churn(self, engine):
        baseline = _run_from_scratch(SCRIPT_OVERLOAD, engine, self.SHED)
        run = _run_arena_incremental(SCRIPT_OVERLOAD, engine, self.SHED)
        assert _fingerprint(run) == _fingerprint(baseline)
        assert baseline.shedding_stats is not None
        assert baseline.shedding_stats.overload_chronons > 0
        assert run.shedding_stats == baseline.shedding_stats

    @pytest.mark.parametrize("engine", ARENA_ENGINES)
    def test_health_stats_identical_under_churn(self, engine):
        baseline = _run_from_scratch(SCRIPT_BASIC, engine, self.FAULTY)
        run = _run_arena_incremental(SCRIPT_BASIC, engine, self.FAULTY)
        assert _fingerprint(run) == _fingerprint(baseline)
        assert baseline.probes_failed > 0
        assert run.health_stats == baseline.health_stats


@st.composite
def churn_scripts(draw):
    def window():
        resource = draw(st.integers(0, NUM_RESOURCES - 1))
        start = draw(st.integers(0, HORIZON - 2))
        length = draw(st.integers(1, 8))
        return (resource, start, start + length)

    def spec():
        return tuple(window() for _ in range(draw(st.integers(1, 2))))

    initial = [spec() for _ in range(draw(st.integers(1, 4)))]
    total = len(initial)
    events = []
    for chronon in sorted(draw(st.sets(st.integers(1, HORIZON - 2),
                                       min_size=1, max_size=5))):
        if draw(st.booleans()) or total == 0:
            batch = [spec() for _ in range(draw(st.integers(1, 3)))]
            events.append((chronon, "submit", batch))
            total += len(batch)
        else:
            victims = draw(st.sets(st.integers(0, total - 1),
                                   min_size=1, max_size=2))
            events.append((chronon, "cancel", sorted(victims)))
    return {"initial": initial, "events": events}


class TestChurnProperty:
    @settings(max_examples=25, deadline=None)
    @given(script=churn_scripts())
    def test_random_churn_is_replay_invariant(self, script):
        baseline = _fingerprint(_run_from_scratch(script, "vectorized"))
        assert _fingerprint(_run_queue(script, "reference")) == baseline
        assert (
            _fingerprint(_run_arena_incremental(script, "vectorized"))
            == baseline
        )
