"""Tests for the empirical competitive-ratio experiment."""

from repro.experiments import competitive


class TestCompetitive:
    def test_rank_one_sedf_always_optimal(self):
        """Proposition 1, population-tested: at rank 1 without overlap,
        S-EDF matches the exact optimum on every instance."""
        result = competitive.run(scale=0.5, seed=2, max_rank=1)
        by_policy = {row[0]: row for row in result.rows}
        assert by_policy["S-EDF"][3] == 100.0  # optimal %
        assert by_policy["S-EDF"][2] == 1.0  # worst ratio

    def test_rank_two_orderings(self):
        result = competitive.run(scale=0.5, seed=3, max_rank=2)
        by_policy = {row[0]: row for row in result.rows}
        # Rank-aware policies at least match S-EDF and beat RANDOM on
        # mean ratio (lower is better).
        assert by_policy["MRSF"][1] <= by_policy["S-EDF"][1] + 1e-9
        assert by_policy["MRSF"][1] <= by_policy["RANDOM"][1] + 1e-9

    def test_ratios_at_least_one(self):
        result = competitive.run(scale=0.3, seed=4, max_rank=2)
        for row in result.rows:
            assert row[1] >= 1.0 - 1e-9
            assert row[2] >= row[1] - 1e-9

    def test_mrsf_within_theoretical_bound(self):
        """Proposition 2: the observed worst ratio stays within l
        (= max total chronons; every EI is 1 chronon and rank <= 2,
        so l <= 2)."""
        result = competitive.run(scale=0.5, seed=5, max_rank=2)
        by_policy = {row[0]: row for row in result.rows}
        assert by_policy["MRSF"][2] <= 2.0 + 1e-9
