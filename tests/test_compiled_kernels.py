"""The optional numba kernels: gating, fallback, and identical output.

``repro.policies.compiled`` binds either pure-NumPy score/pack
primitives (the default, and the only path in environments without
numba) or their ``@njit`` twins when *both* gates hold: numba importable
and ``REPRO_NUMBA`` truthy.  These tests pin the gate logic via module
reloads under a patched environment, the NumPy implementations against
the scalar formulas they batch, and — wherever numba actually is
installed — bit-identical output between the two bindings.
"""

from __future__ import annotations

import contextlib
import importlib
import os

import numpy as np
import pytest

from repro.policies import compiled


@contextlib.contextmanager
def _reloaded_with_env(value):
    """Reload ``compiled`` under REPRO_NUMBA=value; restore on exit.

    Restores the environment *before* the closing reload so the module
    leaves in exactly the process-start binding (monkeypatch would undo
    the env only after a test's own cleanup ran).
    """
    old = os.environ.get("REPRO_NUMBA")
    if value is None:
        os.environ.pop("REPRO_NUMBA", None)
    else:
        os.environ["REPRO_NUMBA"] = value
    importlib.reload(compiled)
    try:
        yield compiled
    finally:
        if old is None:
            os.environ.pop("REPRO_NUMBA", None)
        else:
            os.environ["REPRO_NUMBA"] = old
        importlib.reload(compiled)


def _random_columns(seed=7, n=257):
    rng = np.random.default_rng(seed)
    finish_f = rng.integers(0, 400, n).astype(np.float64)
    rank_f = rng.integers(1, 12, n).astype(np.float64)
    captured_f = rng.integers(0, 11, n).astype(np.float64)
    medf_open_f = rng.integers(0, 12, n).astype(np.float64)
    medf_s_f = (medf_open_f * rng.integers(1, 400, n)).astype(np.float64)
    prio = rng.integers(-(1 << 19), 1 << 19, n)
    static = rng.integers(0, 1 << 41, n)
    return finish_f, rank_f, captured_f, medf_s_f, medf_open_f, prio, static


class TestGates:
    def test_truthy_values(self):
        for value in ("1", "true", "Yes", " ON "):
            assert compiled._truthy(value)
        for value in ("", "0", "false", "off", "maybe"):
            assert not compiled._truthy(value)

    def test_not_requested_by_default(self):
        with _reloaded_with_env(None):
            assert compiled.NUMBA_REQUESTED is False
            assert compiled.numba_active() is False
            assert compiled.sedf_scores is compiled._sedf_scores_np

    def test_requested_via_env(self):
        with _reloaded_with_env("1"):
            assert compiled.NUMBA_REQUESTED is True
            # Active only when numba is importable too; either way the
            # bound callables exist and agree with the reference formulas.
            assert compiled.numba_active() == compiled.numba_available()
            finish_f, *_ = _random_columns()
            np.testing.assert_array_equal(
                compiled.sedf_scores(finish_f, 50),
                compiled._sedf_scores_np(finish_f, 50),
            )

    def test_version_reported_iff_available(self):
        if compiled.numba_available():
            assert isinstance(compiled.numba_version(), str)
        else:
            assert compiled.numba_version() is None

    def test_reload_restores_session_binding(self):
        # The guard the previous tests rely on: after their reload
        # dance the module is back to the process-start state.
        assert compiled.NUMBA_REQUESTED == compiled._truthy(
            os.environ.get("REPRO_NUMBA", "")
        )


class TestNumpyFormulas:
    """The always-on path batches exactly the scalar paper formulas."""

    def test_sedf_matches_scalar(self):
        finish_f, *_ = _random_columns()
        scores = compiled._sedf_scores_np(finish_f, 50)
        for finish, score in zip(finish_f, scores):
            assert score == finish - 50 + 1  # s_edf_value at T=50

    def test_mrsf_matches_scalar(self):
        _, rank_f, captured_f, *_ = _random_columns()
        scores = compiled._mrsf_scores_np(rank_f, captured_f)
        np.testing.assert_array_equal(scores, rank_f - captured_f)

    def test_medf_matches_aggregates(self):
        _, _, _, medf_s_f, medf_open_f, _, _ = _random_columns()
        scores = compiled._medf_scores_np(medf_s_f, medf_open_f, 37)
        np.testing.assert_array_equal(scores, medf_s_f - medf_open_f * 37)

    def test_pack_keys_orders_like_lexsort(self):
        *_, prio, static = _random_columns()
        packed = compiled._pack_keys_np(prio, static)
        np.testing.assert_array_equal(
            np.argsort(packed, kind="stable"),
            np.lexsort((static, prio)),
        )


@pytest.mark.skipif(
    not compiled.numba_available(), reason="numba not installed"
)
class TestCompiledTwinsIdentical:
    """Wherever numba exists, the njit twins must match bit-for-bit."""

    @pytest.fixture(autouse=True)
    def _activated(self):
        with _reloaded_with_env("1"):
            assert compiled.numba_active()
            yield

    def test_all_primitives_bit_identical(self):
        (finish_f, rank_f, captured_f, medf_s_f, medf_open_f,
         prio, static) = _random_columns()
        for chronon in (0, 1, 37, 399):
            np.testing.assert_array_equal(
                compiled.sedf_scores(finish_f, chronon),
                compiled._sedf_scores_np(finish_f, chronon),
            )
            np.testing.assert_array_equal(
                compiled.medf_scores(medf_s_f, medf_open_f, chronon),
                compiled._medf_scores_np(medf_s_f, medf_open_f, chronon),
            )
        np.testing.assert_array_equal(
            compiled.mrsf_scores(rank_f, captured_f),
            compiled._mrsf_scores_np(rank_f, captured_f),
        )
        np.testing.assert_array_equal(
            compiled.pack_keys(prio, static),
            compiled._pack_keys_np(prio, static),
        )

    def test_full_run_schedule_identical_with_numba(self):
        # End-to-end: a vectorized run under the compiled kernels makes
        # the same schedule as the same run after deactivation.
        from repro.core.schedule import BudgetVector
        from repro.core.timebase import Epoch
        from repro.online.arrivals import arrivals_from_profiles
        from repro.online.config import MonitorConfig
        from repro.online.monitor import OnlineMonitor
        from repro.policies import make_policy
        from tests.conftest import random_general_instance

        rng = np.random.default_rng(5)
        profiles = random_general_instance(
            rng, num_resources=6, num_chronons=25, num_ceis=30,
            max_rank=3, max_width=6,
        )
        arrivals = arrivals_from_profiles(profiles)

        def run():
            monitor = OnlineMonitor(
                make_policy("M-EDF"),
                BudgetVector.constant(2, 25),
                config=MonitorConfig(engine="vectorized"),
            )
            monitor.run(Epoch(25), arrivals)
            return monitor.schedule.probes

        with_numba = run()
        with _reloaded_with_env(None):  # back to the NumPy binding
            without_numba = run()
        assert without_numba == with_numba
