"""Unit tests for query compilation into CEIs."""

import pytest

from repro.core.timebase import Epoch
from repro.proxy.compiler import (
    CompilationContext,
    QueryCompileError,
    compile_text,
)
from repro.proxy.queries import parse_queries
from repro.traces.noise import PredictedEvent


def context(**kwargs) -> CompilationContext:
    defaults = dict(
        epoch=Epoch(100),
        resource_ids={"Blog": 0, "CNN": 1, "Money": 2, "Stock": 3},
        chronons_per_minute=1.0,
    )
    defaults.update(kwargs)
    return CompilationContext(**defaults)


PERIODIC = """
SELECT item AS F1
FROM feed(Blog)
WHEN EVERY 10 MINUTES AS T1
WITHIN T1+2 MINUTES
"""

CONDITIONAL = PERIODIC + """

SELECT item AS F2
FROM feed(CNN)
WHEN F1 CONTAINS %oil%
WITHIN T1+10 MINUTES

SELECT item AS F3
FROM feed(Money)
WHEN F1 CONTAINS %oil%
WITHIN T1+10 MINUTES
"""

PUSHED = """
SELECT item AS F1
FROM feed(Stock)
WHEN ON PUSH AS T1

SELECT item AS F2
FROM feed(CNN)
WITHIN T1+1 CHRONONS
"""


class TestPeriodicCompilation:
    def test_one_cei_per_period(self):
        ceis = compile_text(PERIODIC, context())
        assert len(ceis) == 10  # every 10 chronons over 100
        assert all(cei.rank == 1 for cei in ceis)

    def test_windows_match_within_clause(self):
        ceis = compile_text(PERIODIC, context())
        first = ceis[0].eis[0]
        assert (first.start, first.finish) == (0, 2)

    def test_chronon_granularity_scales_periods(self):
        ceis = compile_text(PERIODIC, context(chronons_per_minute=2.0))
        assert len(ceis) == 5  # period = 20 chronons
        assert ceis[0].eis[0].finish == 4  # slack = 2 min = 4 chronons

    def test_conditional_expansion(self):
        ceis = compile_text(
            CONDITIONAL, context(keyword_hits={"oil": {30, 70}})
        )
        ranks = [cei.rank for cei in ceis]
        assert ranks.count(3) == 2
        assert ranks.count(1) == 8
        triggered = [cei for cei in ceis if cei.rank == 3]
        assert {ei.resource for ei in triggered[0].eis} == {0, 1, 2}

    def test_no_hits_means_rank_one_everywhere(self):
        ceis = compile_text(CONDITIONAL, context())
        assert all(cei.rank == 1 for cei in ceis)


class TestPushCompilation:
    def test_pushed_trigger_emits_no_trigger_ei(self):
        events = [PredictedEvent(10, 10), PredictedEvent(50, 50)]
        ceis = compile_text(PUSHED, context(predictions={3: events}))
        assert len(ceis) == 2
        assert all(cei.rank == 1 for cei in ceis)  # only the dependent
        assert ceis[0].eis[0].resource == 1

    def test_noisy_push_predictions_carry_truth(self):
        events = [PredictedEvent(true_chronon=10, predicted_chronon=14)]
        ceis = compile_text(PUSHED, context(predictions={3: events}))
        ei = ceis[0].eis[0]
        assert (ei.start, ei.true_start) == (14, 10)

    def test_missing_predictions_rejected(self):
        with pytest.raises(QueryCompileError, match="event stream"):
            compile_text(PUSHED, context())


class TestCompilationErrors:
    def test_no_trigger(self):
        text = "SELECT item AS F1; FROM feed(Blog); WITHIN 3 CHRONONS"
        with pytest.raises(QueryCompileError, match="exactly one trigger"):
            compile_text(text, context())

    def test_two_triggers(self):
        text = (
            "SELECT a AS F1; FROM feed(Blog); WHEN EVERY 5 CHRONONS AS T1\n\n"
            "SELECT b AS F2; FROM feed(CNN); WHEN EVERY 5 CHRONONS AS T2"
        )
        with pytest.raises(QueryCompileError, match="exactly one trigger"):
            compile_text(text, context())

    def test_dependent_without_within(self):
        text = PERIODIC + "\n\nSELECT b AS F2; FROM feed(CNN)"
        with pytest.raises(QueryCompileError, match="WITHIN"):
            compile_text(text, context())

    def test_dependent_with_wrong_anchor(self):
        text = PERIODIC + "\n\nSELECT b AS F2; FROM feed(CNN); WITHIN T9+3 CHRONONS"
        with pytest.raises(QueryCompileError, match="anchor"):
            compile_text(text, context())

    def test_contains_on_wrong_alias(self):
        text = PERIODIC + (
            "\n\nSELECT b AS F2; FROM feed(CNN); "
            "WHEN F9 CONTAINS %x%; WITHIN T1+3 CHRONONS"
        )
        with pytest.raises(QueryCompileError, match="alias"):
            compile_text(text, context())

    def test_unknown_feed(self):
        text = "SELECT a AS F1; FROM feed(Nowhere); WHEN EVERY 5 CHRONONS AS T1; WITHIN T1+1 CHRONONS"
        with pytest.raises(QueryCompileError, match="unknown feed"):
            compile_text(text, context())

    def test_empty_query_list(self):
        from repro.proxy.compiler import compile_queries

        with pytest.raises(QueryCompileError):
            compile_queries([], context())


class TestUnitConversion:
    def test_seconds_round_up(self):
        ctx = context(chronons_per_minute=1.0)
        queries = parse_queries(
            "SELECT a AS F1; FROM feed(Blog); WHEN EVERY 10 CHRONONS AS T1; "
            "WITHIN T1+30 SECONDS"
        )
        from repro.proxy.compiler import compile_queries

        ceis = compile_queries(queries, ctx)
        # 30 seconds at 1 chronon/minute = 0.5 chronons -> ceil to 1.
        assert ceis[0].eis[0].finish - ceis[0].eis[0].start == 1

    def test_hours(self):
        ctx = context(chronons_per_minute=1.0)
        assert ctx.to_chronons(parse_queries(
            "SELECT a AS F1; FROM feed(Blog); WITHIN 2 HOURS"
        )[0].within.span) == 120
