"""Tests for multi-epoch continuous operation with model refitting."""

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.core.timebase import Epoch
from repro.models import BinnedIntensityModel, HomogeneousPoissonModel
from repro.proxy import ContinuousOperation
from repro.traces.events import TraceBundle
from repro.traces.poisson import poisson_trace
from repro.workloads.generator import GeneratorSpec
from repro.workloads.templates import LengthRule

EPOCH = Epoch(200)
SPEC = GeneratorSpec(num_profiles=10, rank_max=2, max_ceis_per_profile=4)
RULE = LengthRule.window(6)


def trace_factory(index: int, rng: np.random.Generator) -> TraceBundle:
    return poisson_trace(20, EPOCH, 6.0, rng)


def bootstrap(seed: int = 99) -> TraceBundle:
    return poisson_trace(20, EPOCH, 6.0, np.random.default_rng(seed))


def make_operation(**kwargs) -> ContinuousOperation:
    defaults = dict(
        epoch=EPOCH,
        model=HomogeneousPoissonModel(),
        spec=SPEC,
        rule=RULE,
        budget=2.0,
        bootstrap_history=bootstrap(),
    )
    defaults.update(kwargs)
    return ContinuousOperation(**defaults)


class TestOperation:
    def test_runs_requested_epochs(self):
        result = make_operation().run(3, trace_factory, seed=1)
        assert len(result.outcomes) == 3
        assert [o.epoch_index for o in result.outcomes] == [0, 1, 2]

    def test_outcome_values_sane(self):
        result = make_operation().run(2, trace_factory, seed=2)
        for outcome in result.outcomes:
            assert 0.0 <= outcome.completeness <= 1.0
            assert 0.0 <= outcome.coverage <= 1.0
            assert outcome.predicted_events > 0

    def test_history_accumulates_observations(self):
        operation = make_operation()
        before = sum(len(v) for v in operation._history.values())
        operation.run(2, trace_factory, seed=3)
        after = sum(len(v) for v in operation._history.values())
        assert after > before

    def test_series_accessors(self):
        result = make_operation().run(2, trace_factory, seed=4)
        assert len(result.completeness_series) == 2
        assert len(result.coverage_series) == 2

    def test_zero_epochs_rejected(self):
        with pytest.raises(ExperimentError):
            make_operation().run(0, trace_factory)

    def test_no_bootstrap_and_blind_model_raises(self):
        operation = make_operation(bootstrap_history=None)
        with pytest.raises(ExperimentError, match="no resource"):
            operation.run(1, trace_factory, seed=5)

    def test_deterministic_given_seed(self):
        a = make_operation().run(2, trace_factory, seed=6)
        b = make_operation().run(2, trace_factory, seed=6)
        assert a.completeness_series == b.completeness_series

    def test_binned_model_works_too(self):
        operation = make_operation(model=BinnedIntensityModel(num_bins=5))
        result = operation.run(2, trace_factory, seed=7)
        assert len(result.outcomes) == 2

    def test_scalar_budget_broadcast(self):
        operation = make_operation(budget=3.0)
        assert operation.budget.at(0) == 3.0


class TestHistoryLimit:
    def test_history_is_trimmed(self):
        operation = make_operation(history_limit=5)
        operation.run(3, trace_factory, seed=8)
        assert all(len(v) <= 5 for v in operation._history.values())

    def test_bootstrap_trimmed_too(self):
        operation = make_operation(history_limit=2)
        assert all(len(v) <= 2 for v in operation._history.values())

    def test_zero_keeps_everything(self):
        operation = make_operation(history_limit=0)
        operation.run(2, trace_factory, seed=9)
        assert any(len(v) > 5 for v in operation._history.values())

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            make_operation(history_limit=-1)
