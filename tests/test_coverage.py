"""Tests for event coverage and observed-event reconstruction."""

from repro.core.schedule import Schedule
from repro.core.timebase import Epoch
from repro.traces.events import TraceBundle
from repro.workloads.templates import LengthRule
from repro.analysis.coverage import event_coverage, observed_events


def bundle(**streams) -> TraceBundle:
    return TraceBundle.from_mapping({int(k[1:]): v for k, v in streams.items()})


class TestObservedEvents:
    def test_probe_collects_past_event_within_window(self):
        truth = bundle(r0=[5])
        schedule = Schedule.from_pairs([(0, 8)])
        observed = observed_events(schedule, truth, Epoch(20), LengthRule.window(5))
        assert observed.stream(0).chronons == (5,)

    def test_probe_too_late_misses(self):
        truth = bundle(r0=[5])
        schedule = Schedule.from_pairs([(0, 11)])
        observed = observed_events(schedule, truth, Epoch(20), LengthRule.window(5))
        assert len(observed.stream(0)) == 0

    def test_probe_before_event_misses(self):
        truth = bundle(r0=[5])
        schedule = Schedule.from_pairs([(0, 4)])
        observed = observed_events(schedule, truth, Epoch(20), LengthRule.window(5))
        assert len(observed.stream(0)) == 0

    def test_overwrite_life_until_next_event(self):
        truth = bundle(r0=[5, 15])
        schedule = Schedule.from_pairs([(0, 14), (0, 19)])
        observed = observed_events(
            schedule, truth, Epoch(30), LengthRule.overwrite()
        )
        # Probe at 14 catches event 5 (alive until 14); probe at 19
        # catches event 15 (alive to epoch end).
        assert observed.stream(0).chronons == (5, 15)

    def test_overwritten_event_lost(self):
        truth = bundle(r0=[5, 10])
        schedule = Schedule.from_pairs([(0, 12)])
        observed = observed_events(
            schedule, truth, Epoch(30), LengthRule.overwrite()
        )
        assert observed.stream(0).chronons == (10,)

    def test_one_probe_serves_multiple_window_events(self):
        truth = bundle(r0=[5, 6, 7])
        schedule = Schedule.from_pairs([(0, 8)])
        observed = observed_events(schedule, truth, Epoch(30), LengthRule.window(5))
        assert observed.stream(0).chronons == (5, 6, 7)

    def test_unprobed_resources_absent(self):
        truth = bundle(r0=[5], r1=[5])
        schedule = Schedule.from_pairs([(0, 5)])
        observed = observed_events(schedule, truth, Epoch(10), LengthRule.window(2))
        assert 1 not in observed


class TestEventCoverage:
    def test_full_coverage(self):
        truth = bundle(r0=[2], r1=[4])
        schedule = Schedule.from_pairs([(0, 2), (1, 4)])
        report = event_coverage(schedule, truth, Epoch(10), LengthRule.window(0))
        assert report.coverage == 1.0

    def test_partial_coverage(self):
        truth = bundle(r0=[2], r1=[4])
        schedule = Schedule.from_pairs([(0, 2)])
        report = event_coverage(schedule, truth, Epoch(10), LengthRule.window(0))
        assert report.coverage == 0.5

    def test_empty_truth(self):
        report = event_coverage(
            Schedule(), TraceBundle(), Epoch(10), LengthRule.window(0)
        )
        assert report.coverage == 1.0

    def test_coverage_monotone_in_probes(self):
        truth = bundle(r0=[2, 8], r1=[4])
        few = Schedule.from_pairs([(0, 2)])
        more = Schedule.from_pairs([(0, 2), (1, 4), (0, 8)])
        epoch = Epoch(12)
        rule = LengthRule.window(1)
        assert (
            event_coverage(more, truth, epoch, rule).coverage
            >= event_coverage(few, truth, epoch, rule).coverage
        )
