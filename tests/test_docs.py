"""Executable-documentation tests: the README snippets must stay runnable."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"
TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "tutorial.md"


def python_blocks(path: Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_runs(self, capsys):
        blocks = python_blocks(README)
        assert blocks, "README lost its quickstart code block"
        exec(compile(blocks[0], "<readme-quickstart>", "exec"), {})
        out = capsys.readouterr().out
        assert "completeness" in out

    def test_proxy_block_runs_with_context(self, capsys):
        blocks = python_blocks(README)
        proxy_blocks = [b for b in blocks if "MonitoringProxy" in b]
        assert proxy_blocks, "README lost its proxy code block"
        from repro import Epoch, ResourcePool

        context = {
            "epoch": Epoch(400),
            "pool": ResourcePool.from_names(
                ["MishBlog", "CNNBreakingNews", "CNNMoney"]
            ),
        }
        exec(compile(proxy_blocks[0], "<readme-proxy>", "exec"), context)
        out = capsys.readouterr().out
        assert out.strip()  # it prints the analyst's stats


class TestTutorial:
    def test_model_blocks_run(self):
        """The tutorial's self-contained model blocks (1 and 2) run."""
        blocks = python_blocks(TUTORIAL)
        assert len(blocks) >= 4
        context: dict = {}
        for block in blocks[:2]:  # §1: model; §1b: semantics
            exec(compile(block, "<tutorial>", "exec"), context)

    def test_every_mentioned_symbol_is_importable(self):
        """Every `repro.<something>` dotted name in the docs resolves."""
        import importlib

        text = README.read_text() + TUTORIAL.read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        for dotted in sorted(modules):
            parts = dotted.split(".")
            # Try importing progressively; the tail may be an attribute.
            module = None
            for split in range(len(parts), 0, -1):
                try:
                    module = importlib.import_module(".".join(parts[:split]))
                    remainder = parts[split:]
                    break
                except ImportError:
                    continue
            assert module is not None, f"doc mentions unknown module {dotted}"
            target = module
            for attribute in remainder:
                assert hasattr(target, attribute), (
                    f"doc mentions {dotted} but {attribute!r} is missing"
                )
                target = getattr(target, attribute)
