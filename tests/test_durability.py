"""Tests for the durability layer: WAL codec, snapshot store, recovery.

The crash-injection harness proper lives in ``tests/crash_harness.py``
(run by the CI ``crash-recovery`` job with a seed matrix); this file
covers the unit surface — frame codec edge cases, disk-fault
degradation and healing, checkpoint/truncate mechanics, both recovery
modes, the journaled HTTP/service surface — plus one representative
harness cell so tier-1 always exercises process-death recovery, and the
hypothesis fixed-point property ``snapshot() → restore() → snapshot()``
across engines × shedding × faults.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ExperimentError, ModelError
from repro.core.resource import ResourcePool
from repro.online import MonitorConfig
from repro.online.faults import FailureModel
from repro.online.health import HealthConfig
from repro.online.shedding import SheddingConfig
from repro.proxy.durability import (
    DurabilityConfig,
    DurableStreamingProxy,
    JournalCorruptError,
    SnapshotStore,
    WriteAheadLog,
    decode_frames,
    encode_frame,
)
from repro.proxy.service import serve
from repro.proxy.streaming import StreamingProxy
from tests.conftest import make_cei
from tests.crash_harness import (
    EXIT_KILLED,
    recover_and_finish,
    reference_fingerprint,
    run_child,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _post(url: str):
    request = urllib.request.Request(url, data=b"", method="POST")
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


class TestFrameCodec:
    def test_empty_log(self):
        assert decode_frames(b"") == ([], 0, False)

    def test_roundtrip(self):
        records = [{"op": "tick", "to": 3}, {"op": "register", "client": "a"}]
        data = b"".join(encode_frame(r) for r in records)
        decoded, clean, torn = decode_frames(data)
        assert decoded == records
        assert clean == len(data)
        assert not torn

    @pytest.mark.parametrize("cut", [1, 4, 7, 9, 12])
    def test_torn_tail_is_dropped(self, cut):
        frames = [encode_frame({"op": "tick", "to": j}) for j in range(3)]
        whole = b"".join(frames[:2])
        data = whole + frames[2][:cut]
        decoded, clean, torn = decode_frames(data)
        assert [r["to"] for r in decoded] == [0, 1]
        assert clean == len(whole)
        assert torn

    def test_bit_flip_raises_corrupt(self):
        data = bytearray(
            encode_frame({"op": "tick", "to": 1})
            + encode_frame({"op": "tick", "to": 2})
        )
        data[10] ^= 0x40  # flip a payload bit of the first frame
        with pytest.raises(JournalCorruptError, match="CRC mismatch"):
            decode_frames(bytes(data))

    def test_non_object_record_rejected(self):
        payload = json.dumps([1, 2, 3]).encode()
        import struct
        import zlib

        frame = struct.pack(">II", len(payload), zlib.crc32(payload)) + payload
        with pytest.raises(JournalCorruptError, match="not a record"):
            decode_frames(frame)


# ---------------------------------------------------------------------------
# Write-ahead log
# ---------------------------------------------------------------------------


class FlakyOpener:
    """An opener whose files fail their first ``fail_writes`` writes."""

    def __init__(self, fail_writes: int) -> None:
        self.remaining = fail_writes

    def __call__(self, path: str, mode: str):
        outer = self

        class _File:
            def __init__(self) -> None:
                self._inner = open(path, mode)

            def write(self, data: bytes) -> int:
                if outer.remaining > 0:
                    outer.remaining -= 1
                    raise OSError(28, "No space left on device")
                return self._inner.write(data)

            def __getattr__(self, name: str):
                return getattr(self._inner, name)

        return _File()


class TestWriteAheadLog:
    def test_append_recover_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append({"op": "register", "client": "a"})
        wal.append({"op": "tick", "to": 4})
        wal.close()
        fresh = WriteAheadLog(tmp_path / "wal.log")
        records = fresh.recover()
        assert [r["op"] for r in records] == ["register", "tick"]
        assert [r["seq"] for r in records] == [1, 2]
        assert fresh.last_seq == 2

    def test_recover_truncates_torn_tail_physically(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"op": "tick", "to": 1})
        wal.append({"op": "tick", "to": 2})
        wal.close()
        clean_bytes = path.read_bytes()
        path.write_bytes(clean_bytes + encode_frame({"op": "tick", "to": 3})[:7])
        fresh = WriteAheadLog(path)
        records = fresh.recover()
        assert [r["to"] for r in records] == [1, 2]
        assert path.read_bytes() == clean_bytes
        # Appends after a torn recovery extend the clean prefix.
        fresh.append({"op": "tick", "to": 9})
        fresh.close()
        again = WriteAheadLog(path)
        assert [r["to"] for r in again.recover()] == [1, 2, 9]

    def test_corrupt_mid_log_refused(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"op": "tick", "to": 1})
        wal.append({"op": "tick", "to": 2})
        wal.close()
        data = bytearray(path.read_bytes())
        data[10] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            WriteAheadLog(path).recover()

    def test_truncate_through_drops_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for j in range(5):
            wal.append({"op": "tick", "to": j})
        wal.truncate_through(3)
        wal.append({"op": "tick", "to": 99})
        wal.close()
        records = WriteAheadLog(path).recover()
        assert [r["seq"] for r in records] == [4, 5, 6]

    @pytest.mark.parametrize("policy", ["always", "interval", "never"])
    def test_fsync_policies_all_persist(self, tmp_path, policy):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync=policy, fsync_every=2)
        for j in range(5):
            wal.append({"op": "tick", "to": j})
        wal.close()
        assert len(WriteAheadLog(path).recover()) == 5

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ModelError, match="fsync policy"):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_transient_fault_retried(self, tmp_path):
        sleeps: list[float] = []
        wal = WriteAheadLog(
            tmp_path / "wal.log",
            retries=3,
            backoff=0.5,
            opener=FlakyOpener(fail_writes=2),
            sleep=sleeps.append,
        )
        wal.append({"op": "tick", "to": 1})
        assert not wal.degraded
        assert sleeps == [0.5, 1.0]  # exponential backoff, injected sleep
        wal.close()
        assert len(WriteAheadLog(tmp_path / "wal.log").recover()) == 1

    def test_sustained_fault_degrades_then_heals(self, tmp_path):
        opener = FlakyOpener(fail_writes=100)
        wal = WriteAheadLog(
            tmp_path / "wal.log",
            retries=1,
            backoff=0.0,
            opener=opener,
            sleep=lambda _s: None,
        )
        wal.append({"op": "tick", "to": 1})
        wal.append({"op": "tick", "to": 2})
        assert wal.degraded
        assert wal.lag == 2
        assert "No space left" in wal.last_error
        # The volume heals: the next append drains the whole backlog.
        opener.remaining = 0
        wal.append({"op": "tick", "to": 3})
        assert not wal.degraded
        assert wal.lag == 0
        assert wal.last_error is None
        wal.close()
        records = WriteAheadLog(tmp_path / "wal.log").recover()
        assert [r["to"] for r in records] == [1, 2, 3]
        assert [r["seq"] for r in records] == [1, 2, 3]


# ---------------------------------------------------------------------------
# Group-commit fsync batching
# ---------------------------------------------------------------------------


class FakeClock:
    """Injectable monotonic clock for deterministic window tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestGroupCommit:
    @pytest.fixture
    def fsync_count(self, monkeypatch):
        calls = {"n": 0}
        real = os.fsync

        def counting(fd):
            calls["n"] += 1
            real(fd)

        monkeypatch.setattr(os, "fsync", counting)
        return calls

    def test_in_window_appends_defer_fsync(self, tmp_path, fsync_count):
        clock = FakeClock()
        wal = WriteAheadLog(
            tmp_path / "wal.log", fsync="always", group_window=0.05, clock=clock
        )
        wal.append({"op": "tick", "to": 1})  # first append opens the group
        assert fsync_count["n"] == 1
        clock.now = 0.01
        wal.append({"op": "tick", "to": 2})
        clock.now = 0.02
        wal.append({"op": "tick", "to": 3})
        assert fsync_count["n"] == 1  # both rode the open group
        clock.now = 0.06  # window elapsed: next append commits the group
        wal.append({"op": "tick", "to": 4})
        assert fsync_count["n"] == 2
        wal.close()
        records = WriteAheadLog(tmp_path / "wal.log").recover()
        assert [r["to"] for r in records] == [1, 2, 3, 4]

    def test_sync_commits_pending_group(self, tmp_path, fsync_count):
        clock = FakeClock()
        wal = WriteAheadLog(
            tmp_path / "wal.log", fsync="always", group_window=10.0, clock=clock
        )
        wal.append({"op": "tick", "to": 1})
        clock.now = 0.5
        wal.append({"op": "tick", "to": 2})
        before = fsync_count["n"]
        wal.sync()  # explicit barrier commits the deferred group now
        assert fsync_count["n"] == before + 1
        wal.close()

    def test_close_commits_pending_group(self, tmp_path, fsync_count):
        clock = FakeClock()
        wal = WriteAheadLog(
            tmp_path / "wal.log", fsync="always", group_window=10.0, clock=clock
        )
        wal.append({"op": "tick", "to": 1})
        clock.now = 1.0
        wal.append({"op": "tick", "to": 2})
        before = fsync_count["n"]
        wal.close()
        assert fsync_count["n"] == before + 1
        assert len(WriteAheadLog(tmp_path / "wal.log").recover()) == 2

    def test_zero_window_is_plain_always(self, tmp_path, fsync_count):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="always")
        for j in range(3):
            wal.append({"op": "tick", "to": j})
        assert fsync_count["n"] == 3
        wal.close()

    def test_backlog_drain_joins_group(self, tmp_path, fsync_count):
        clock = FakeClock()
        opener = FlakyOpener(fail_writes=100)
        wal = WriteAheadLog(
            tmp_path / "wal.log",
            fsync="always",
            group_window=10.0,
            clock=clock,
            retries=0,
            backoff=0.0,
            opener=opener,
            sleep=lambda _s: None,
        )
        wal.append({"op": "tick", "to": 1})
        wal.append({"op": "tick", "to": 2})
        assert wal.degraded and wal.lag == 2
        opener.remaining = 0
        wal.append({"op": "tick", "to": 3})  # drains the backlog in one write
        assert not wal.degraded
        assert fsync_count["n"] == 1  # one group commit for all three
        clock.now = 11.0
        wal.append({"op": "tick", "to": 4})
        assert fsync_count["n"] == 2
        wal.close()
        records = WriteAheadLog(tmp_path / "wal.log").recover()
        assert [r["to"] for r in records] == [1, 2, 3, 4]

    def test_window_validation(self, tmp_path):
        with pytest.raises(ModelError, match="group_window"):
            WriteAheadLog(tmp_path / "wal.log", group_window=-0.1)
        with pytest.raises(ModelError, match="group_window"):
            WriteAheadLog(
                tmp_path / "wal.log", fsync="interval", group_window=0.5
            )
        with pytest.raises(ModelError, match="group_window"):
            DurabilityConfig(root=tmp_path, group_window=-1.0)
        with pytest.raises(ModelError, match="group_window"):
            DurabilityConfig(root=tmp_path, fsync="never", group_window=0.5)

    def test_proxy_passes_window_through(self, tmp_path, fsync_count):
        proxy = DurableStreamingProxy(
            DurabilityConfig(root=tmp_path, fsync="always", group_window=30.0),
            resources=ResourcePool.uniform(4),
            budget=1.0,
        )
        proxy.register_client("alice")
        proxy.submit_ceis("alice", [make_cei((0, 0, 5))])
        proxy.tick(2)
        appends = fsync_count["n"]
        assert appends <= 2  # first append fsyncs; the rest ride the group
        expected = _state(proxy)
        proxy.close()
        recovered = make_durable(
            tmp_path, fsync="always", group_window=30.0
        )
        assert _state(recovered) == expected
        recovered.close()


# ---------------------------------------------------------------------------
# Snapshot store
# ---------------------------------------------------------------------------


class TestSnapshotStore:
    def test_save_latest_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.sqlite3", keep=2)
        store.save(chronon=3, wal_seq=7, payload={"x": 1})
        store.save(chronon=9, wal_seq=12, payload={"x": 2})
        latest = store.latest()
        assert latest.chronon == 9
        assert latest.wal_seq == 12
        assert latest.payload == {"x": 2}
        store.close()

    def test_keep_prunes_old_rows(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.sqlite3", keep=2)
        for j in range(5):
            store.save(chronon=j, wal_seq=j, payload={"j": j})
        assert store.count() == 2
        assert store.latest().payload == {"j": 4}
        store.close()

    def test_corrupt_newest_row_falls_back(self, tmp_path):
        path = tmp_path / "snap.sqlite3"
        store = SnapshotStore(path, keep=3)
        store.save(chronon=1, wal_seq=1, payload={"good": "old"})
        store.save(chronon=2, wal_seq=2, payload={"good": "new"})
        store.close()
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE snapshots SET payload = 'not json{' WHERE chronon = 2"
        )
        conn.commit()
        conn.close()
        fresh = SnapshotStore(path, keep=3)
        assert fresh.latest().payload == {"good": "old"}
        fresh.close()

    def test_empty_store(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.sqlite3")
        assert store.latest() is None
        store.close()


# ---------------------------------------------------------------------------
# Durable proxy: recovery semantics
# ---------------------------------------------------------------------------


def make_durable(root, **overrides) -> DurableStreamingProxy:
    defaults = dict(root=root, fsync="never", snapshot_every=0)
    defaults.update(overrides)
    return DurableStreamingProxy(
        DurabilityConfig(**defaults),
        resources=ResourcePool.uniform(4),
        budget=1.0,
    )


def _churn(proxy) -> None:
    alice = proxy.register_client("alice")
    proxy.submit_ceis(alice, [make_cei((0, 0, 5), (1, 3, 9)), make_cei((2, 1, 8))])
    proxy.tick(3)
    bob = proxy.register_client("bob")
    proxy.submit_ceis(bob, [make_cei((3, 4, 14))])
    proxy.cancel_ceis(alice, [proxy.submitted_ceis()[1]])
    proxy.set_budget(2.0)
    proxy.tick(5)


def _state(proxy) -> dict:
    return {
        "pairs": [list(p) for p in proxy.monitor.schedule.pairs()],
        "stats": {
            k: v
            for k, v in proxy.stats().items()
            if k not in ("wal_seq", "degraded")
        },
        "clients": {
            name: proxy.client_stats(name) for name in proxy.client_names
        },
    }


class TestDurableRecovery:
    def test_fresh_directory_is_fresh_start(self, tmp_path):
        proxy = make_durable(tmp_path)
        assert proxy.now == 0
        assert proxy.journal_seq == 0
        assert proxy.client_names == []
        proxy.close()

    def test_exact_recovery_is_bit_identical(self, tmp_path):
        proxy = make_durable(tmp_path)
        _churn(proxy)
        expected = _state(proxy)
        proxy.close()
        recovered = make_durable(tmp_path)
        assert _state(recovered) == expected
        # ... and stays identical as both continue.
        recovered.tick(4)
        recovered.close()

    def test_recovery_without_close_replays_wal_tail(self, tmp_path):
        proxy = make_durable(tmp_path)
        _churn(proxy)
        expected = _state(proxy)
        # No close(): simulate process death with the journal as the only
        # durable state (fsync=never still flushes to the page cache).
        proxy._wal.sync()
        recovered = make_durable(tmp_path)
        assert _state(recovered) == expected

    def test_durable_mode_recovers_client_table(self, tmp_path):
        proxy = make_durable(tmp_path, recovery="durable")
        _churn(proxy)
        before = proxy.stats()
        proxy.close()
        recovered = make_durable(tmp_path, recovery="durable")
        after = recovered.stats()
        assert after["now"] == before["now"]
        assert after["clients"] == before["clients"]
        assert after["submitted_ceis"] == before["submitted_ceis"]
        # Cancels keep working against recovered (re-parsed) objects.
        recovered.cancel_ceis("bob")
        recovered.close()

    def test_duplicate_replay_is_idempotent(self, tmp_path):
        proxy = make_durable(tmp_path)
        _churn(proxy)
        expected = _state(proxy)
        proxy._wal.sync()
        wal_path = proxy.durability.wal_path
        records, _, _ = decode_frames(wal_path.read_bytes())
        # A botched truncation could leave every frame duplicated.
        with open(wal_path, "ab") as handle:
            for record in records:
                handle.write(encode_frame(record))
        recovered = make_durable(tmp_path)
        assert _state(recovered) == expected
        recovered.close()

    def test_corrupt_mid_journal_refused(self, tmp_path):
        proxy = make_durable(tmp_path)
        _churn(proxy)
        proxy._wal.sync()
        wal_path = proxy.durability.wal_path
        data = bytearray(wal_path.read_bytes())
        data[12] ^= 0x20
        wal_path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError):
            make_durable(tmp_path)

    def test_periodic_checkpoint_truncates_journal(self, tmp_path):
        proxy = make_durable(tmp_path, snapshot_every=2)
        alice = proxy.register_client("alice")
        proxy.submit_ceis(alice, [make_cei((0, 0, 30))])
        for _ in range(10):
            proxy.tick(1)
        status = proxy.durability_status()
        assert status["last_snapshot_chronon"] == 10
        assert status["records_since_snapshot"] == 0
        assert proxy._store.count() >= 1
        # The journal behind the checkpoint is gone, but sequence
        # numbering survives recovery.
        seq = proxy.journal_seq
        proxy.close()
        recovered = make_durable(tmp_path, snapshot_every=2)
        assert recovered.journal_seq == seq
        assert recovered.now == 10
        recovered.close()

    def test_unregister_is_journaled(self, tmp_path):
        proxy = make_durable(tmp_path)
        alice = proxy.register_client("alice")
        proxy.register_client("bob")
        proxy.submit_ceis(alice, [make_cei((0, 0, 50))])
        proxy.tick(2)
        proxy.unregister_client(alice)
        assert proxy.client_names == ["bob"]
        expected = _state(proxy)
        proxy.close()
        recovered = make_durable(tmp_path)
        assert recovered.client_names == ["bob"]
        assert _state(recovered) == expected
        recovered.close()

    def test_disk_faults_degrade_and_heal(self, tmp_path):
        opener = FlakyOpener(fail_writes=100)
        proxy = DurableStreamingProxy(
            DurabilityConfig(
                root=tmp_path, fsync="never", retries=0, backoff=0.0
            ),
            budget=1.0,
            opener=opener,
            sleep=lambda _s: None,
        )
        proxy.register_client("alice")
        assert proxy.degraded
        assert proxy.durability_status()["wal_lag"] == 1
        assert proxy.stats()["degraded"] is True
        # The service keeps accepting work while degraded...
        proxy.submit_ceis("alice", [make_cei((0, 0, 9))])
        proxy.tick(2)
        assert proxy.durability_status()["wal_lag"] == 3
        # ...and self-heals once the volume recovers.
        opener.remaining = 0
        proxy.tick(1)
        assert not proxy.degraded
        assert proxy.durability_status()["wal_lag"] == 0
        expected = _state(proxy)
        proxy.close()
        recovered = make_durable(tmp_path)
        assert _state(recovered) == expected
        recovered.close()


class TestDurableModeOplog:
    """``recovery='durable'`` keeps O(needs) memory, not O(history)."""

    def test_oplog_holds_only_submit_skeletons(self, tmp_path):
        proxy = make_durable(tmp_path, recovery="durable")
        _churn(proxy)
        assert proxy._oplog, "submits must still be retained for rebinding"
        for record in proxy._oplog:
            assert record["op"] == "submit"
            assert set(record) == {"op", "client", "ordinals"}
        proxy.close()

    def test_exact_mode_retains_full_history(self, tmp_path):
        proxy = make_durable(tmp_path, recovery="exact")
        _churn(proxy)
        ops = {record["op"] for record in proxy._oplog}
        assert "submit" in ops and "cancel" in ops and "register" in ops
        assert any("ceis" in r for r in proxy._oplog if r["op"] == "submit")
        proxy.close()

    def test_exact_recovery_from_durable_snapshot_refused(self, tmp_path):
        proxy = make_durable(tmp_path, recovery="durable")
        _churn(proxy)
        proxy.close()  # checkpoints with oplog_complete=False
        with pytest.raises(ModelError, match="recovery='durable'"):
            make_durable(tmp_path, recovery="exact")

    def test_durable_snapshot_rebinds_ordinals_across_restarts(self, tmp_path):
        proxy = make_durable(tmp_path, recovery="durable")
        alice = proxy.register_client("alice")
        proxy.submit_ceis(
            alice, [make_cei((0, 2, 40)), make_cei((1, 3, 50)), make_cei((2, 4, 60))]
        )
        proxy.tick(1)
        proxy.close()
        recovered = make_durable(tmp_path, recovery="durable")
        # Cancel by ordinal: the skeleton oplog realigns the global index
        # onto the re-parsed CEI objects.
        victim = recovered.submitted_ceis()[1]
        assert recovered.cancel_ceis("alice", [victim]) == 1
        recovered.close()
        again = make_durable(tmp_path, recovery="durable")
        assert again.client_stats("alice")["cancelled_ceis"] == 1
        # The surviving needs re-admit and satisfy; the cancelled one
        # stays withdrawn forever.
        again.tick(4)
        stats = again.client_stats("alice")
        assert stats["satisfied_ceis"] == 2
        assert stats["cancelled_ceis"] == 1
        again.close()


# ---------------------------------------------------------------------------
# One representative crash-harness cell (the full matrix runs in CI)
# ---------------------------------------------------------------------------


class TestCrashRecoverySmoke:
    def test_torn_write_recovery_matches_reference(self, tmp_path):
        seed = 0
        reference = reference_fingerprint(seed)
        root = str(tmp_path / "crash")
        os.makedirs(root)
        code = run_child(root, seed, "--kill-frame", "9", "--torn-bytes", "5")
        assert code == EXIT_KILLED
        assert recover_and_finish(root, seed) == reference


# ---------------------------------------------------------------------------
# Service surface: healthz shapes, POST /snapshot, graceful shutdown
# ---------------------------------------------------------------------------


class TestDurableService:
    def test_healthz_durable_shape(self, tmp_path):
        proxy = make_durable(tmp_path)
        proxy.register_client("ana")
        service = serve(proxy)
        try:
            status, health = _get(f"{service.url}/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["wal_lag"] == 0
            assert health["last_snapshot_chronon"] is None
            assert set(health["breakers"]) == {
                "opens", "reopens", "closes", "short_circuited",
            }
            assert health["durability"]["degraded"] is False
            # Core keys of the pre-durability shape are still present.
            assert {"now", "clients", "open_ceis", "clock_running"} <= set(
                health
            )
        finally:
            service.shutdown()
            proxy.close()

    def test_post_snapshot_triggers_checkpoint(self, tmp_path):
        proxy = make_durable(tmp_path)
        proxy.register_client("ana")
        proxy.tick(3)
        service = serve(proxy)
        try:
            status, body = _post(f"{service.url}/snapshot")
            assert status == 200
            assert body["snapshot_id"] >= 1
            assert body["degraded"] is False
            status, health = _get(f"{service.url}/healthz")
            assert health["last_snapshot_chronon"] == 3
        finally:
            service.shutdown()
            proxy.close()

    def test_post_snapshot_conflicts_on_plain_proxy(self):
        proxy = StreamingProxy(budget=1.0)
        service = serve(proxy)
        try:
            status, body = _post(f"{service.url}/snapshot")
            assert status == 409
            assert "not durable" in body["error"]
        finally:
            service.shutdown()

    def test_post_unknown_route_404(self, tmp_path):
        proxy = make_durable(tmp_path)
        service = serve(proxy)
        try:
            status, body = _post(f"{service.url}/no/such")
            assert status == 404
        finally:
            service.shutdown()
            proxy.close()


class TestGracefulShutdown:
    def test_sigterm_writes_final_snapshot(self, tmp_path):
        wal_dir = tmp_path / "state"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.proxy",
                "serve",
                "--wal-dir",
                str(wal_dir),
                "--tick-interval",
                "0.01",
            ],
            env=env,
            cwd=str(REPO_ROOT),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert line.startswith("serving http://"), line
            url = line.split()[1]
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, health = _get(f"{url}/healthz")
                assert status == 200
                if health["now"] > 0:
                    break
                time.sleep(0.02)
            assert health["clock_running"] is True
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=5)
        # The shutdown path stopped the clock, flushed the journal and
        # wrote a final snapshot: a recovered proxy resumes at the exact
        # chronon the dying service reached.
        store = SnapshotStore(wal_dir / "snapshots.sqlite3")
        final = store.latest()
        store.close()
        assert final is not None
        assert final.chronon > 0
        recovered = DurableStreamingProxy(DurabilityConfig(root=wal_dir))
        assert recovered.now == final.chronon
        recovered.close()


# ---------------------------------------------------------------------------
# Satellite: restore() clock validation regressions
# ---------------------------------------------------------------------------


class TestRestoreValidation:
    def _payload(self, now):
        proxy = StreamingProxy(budget=1.0)
        proxy.register_client("ana")
        payload = proxy.snapshot()
        payload["now"] = now
        return payload

    @pytest.mark.parametrize("now", [-1, -7, 2.5, True, "3", None])
    def test_invalid_clock_rejected(self, now):
        with pytest.raises(ModelError, match="non-negative integer"):
            StreamingProxy.restore(self._payload(now))

    def test_valid_clock_accepted(self):
        restored = StreamingProxy.restore(self._payload(4))
        assert restored.now == 4

    def test_wrong_format_still_experiment_error(self):
        with pytest.raises(ExperimentError, match="not a streaming-proxy"):
            StreamingProxy.restore({"format": "bogus", "now": 0})


# ---------------------------------------------------------------------------
# Hypothesis: snapshot → restore → snapshot is a fixed point
# ---------------------------------------------------------------------------

NUM_RESOURCES = 4
HORIZON = 16

CONFIGS = {
    "reference": MonitorConfig(engine="reference"),
    "vectorized": MonitorConfig(engine="vectorized"),
    "shedding": MonitorConfig(
        engine="vectorized",
        shedding=SheddingConfig(
            overload_on=1.2, overload_off=1.0, sustain=2, target_ratio=1.0
        ),
    ),
    "faults": MonitorConfig(
        engine="reference",
        faults=FailureModel(rate=0.25, seed=11),
        health=HealthConfig(),
    ),
}


@st.composite
def proxy_histories(draw):
    def window():
        resource = draw(st.integers(0, NUM_RESOURCES - 1))
        start = draw(st.integers(0, HORIZON - 2))
        return (resource, start, start + draw(st.integers(0, 6)))

    steps = []
    for _ in range(draw(st.integers(1, 8))):
        kind = draw(st.sampled_from(["submit", "cancel", "tick", "register"]))
        if kind == "submit":
            steps.append(
                (
                    "submit",
                    [
                        tuple(window() for _ in range(draw(st.integers(1, 2))))
                        for _ in range(draw(st.integers(1, 3)))
                    ],
                )
            )
        elif kind == "cancel":
            steps.append(("cancel", draw(st.integers(0, 7))))
        elif kind == "tick":
            steps.append(("tick", draw(st.integers(1, 4))))
        else:
            steps.append(("register", None))
    return steps


class TestSnapshotRoundtripProperty:
    @settings(max_examples=20, deadline=None)
    @given(steps=proxy_histories(), config_key=st.sampled_from(sorted(CONFIGS)))
    def test_snapshot_restore_snapshot_fixed_point(self, steps, config_key):
        kwargs = dict(
            resources=ResourcePool.uniform(NUM_RESOURCES),
            budget=1.0,
            policy="MRSF",
            config=CONFIGS[config_key],
        )
        proxy = StreamingProxy(**kwargs)
        clients = [proxy.register_client("c0")]
        submitted = []
        for kind, payload in steps:
            if kind == "register":
                clients.append(proxy.register_client(f"c{len(clients)}"))
            elif kind == "submit":
                ceis = [make_cei(*windows) for windows in payload]
                proxy.submit_ceis(clients[-1], ceis)
                submitted.extend((clients[-1], cei) for cei in ceis)
            elif kind == "cancel":
                if submitted:
                    owner, cei = submitted[payload % len(submitted)]
                    proxy.cancel_ceis(owner, [cei])
            else:
                proxy.tick(payload)
        payload = proxy.snapshot()
        restored = StreamingProxy.restore(payload, **kwargs)
        assert restored.snapshot() == payload
