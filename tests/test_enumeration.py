"""Unit tests for the exact offline enumeration solver."""

import pytest

from repro.core.errors import InstanceTooLargeError
from repro.core.metrics import gained_completeness
from repro.core.profile import ProfileSet
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.offline.enumeration import enumeration_node_estimate, solve_exact
from tests.conftest import make_cei


class TestSolveExact:
    def test_trivial_instance(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 2))])
        result = solve_exact(profiles, Epoch(3), BudgetVector.constant(1, 3))
        assert result.completeness == 1.0

    def test_conflicting_unit_ceis(self):
        # Two unit CEIs on different resources at the same chronon, C=1:
        # only one can be captured.
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 1, 1)), make_cei((1, 1, 1))]
        )
        result = solve_exact(profiles, Epoch(3), BudgetVector.constant(1, 3))
        assert result.captured_ceis == 1

    def test_shared_probe_captures_both(self):
        # Same resource, overlapping windows: one probe can serve both.
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 2)), make_cei((0, 1, 3))]
        )
        result = solve_exact(profiles, Epoch(4), BudgetVector.constant(1, 4))
        assert result.captured_ceis == 2

    def test_rank_two_cei_needs_both_eis(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 0), (1, 0, 0)), make_cei((2, 1, 1))]
        )
        # C=1: the rank-2 CEI needs both resources at chronon 0 — impossible.
        result = solve_exact(profiles, Epoch(2), BudgetVector.constant(1, 2))
        assert result.captured_ceis == 1

    def test_budget_two_enables_rank_two(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 0), (1, 0, 0))])
        result = solve_exact(profiles, Epoch(1), BudgetVector.constant(2, 1))
        assert result.captured_ceis == 1

    def test_schedule_is_feasible_and_scores_as_reported(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 1), (1, 2, 3)), make_cei((1, 0, 1)), make_cei((0, 2, 3))]
        )
        budget = BudgetVector.constant(1, 4)
        result = solve_exact(profiles, Epoch(4), budget)
        result.schedule.check_feasible(budget)
        assert gained_completeness(profiles, result.schedule) == result.completeness

    def test_node_guard_raises(self):
        ceis = [make_cei((r, 0, 9)) for r in range(8)]
        profiles = ProfileSet.from_ceis(ceis)
        with pytest.raises(InstanceTooLargeError):
            solve_exact(profiles, Epoch(10), BudgetVector.constant(2, 10), max_nodes=50)

    def test_empty_instance(self):
        result = solve_exact(ProfileSet(), Epoch(3), BudgetVector.constant(1, 3))
        assert result.completeness == 1.0
        assert result.captured_ceis == 0


class TestNodeEstimate:
    def test_small_estimate(self):
        # n=3, C=1, K=2 -> (1+3)^2 = 16.
        assert enumeration_node_estimate(3, BudgetVector.constant(1, 2)) == 16.0

    def test_large_estimate_saturates(self):
        estimate = enumeration_node_estimate(100, BudgetVector.constant(5, 100))
        assert estimate == float("inf")

    def test_horizon_argument(self):
        assert enumeration_node_estimate(3, BudgetVector.constant(1, 10), horizon=2) == 16.0
