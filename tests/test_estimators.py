"""Estimator edge cases: late starts, dead resources, epoch boundaries.

Regression suite for two verified bugs:

* ``EmpiricalIntervalModel`` used to seed its renewal clock at the raw
  first observed chronon, so a history that starts late in the fitting
  horizon (say chronon 15 of 20) predicted *nothing* for the epoch head
  — the resource went unmonitored exactly where a renewal process says
  events are due.  The clock now starts at the gap-phase offset.
* ``HomogeneousPoissonModel`` in deterministic mode forced
  ``max(1, round(expected))`` events, so a near-dead resource always
  competed for probes while the stochastic branch correctly returned
  ``[]``; and ``_distinct_sorted`` clamped out-of-epoch candidates onto
  the boundary chronon instead of dropping them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timebase import Epoch
from repro.models.estimators import (
    BinnedIntensityModel,
    EmpiricalIntervalModel,
    HomogeneousPoissonModel,
    _distinct_sorted,
    make_model,
)


def rng_for(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestLateHistories:
    def test_late_first_observation_covers_epoch_head(self):
        """The ISSUE regression: first observation at 75% of the epoch."""
        epoch = Epoch(20)
        model = EmpiricalIntervalModel().fit([15, 18], horizon=20)
        predictions = model.predict(epoch, rng_for())
        assert predictions, "late history must still predict"
        # Gap 3, phase 15 % 3 == 0: the whole epoch is covered, head first.
        assert predictions[0] < 5
        assert predictions == sorted(set(predictions))

    def test_phase_offset_preserved(self):
        """A history offset from chronon 0 keeps its phase, not its delay."""
        epoch = Epoch(100)
        model = EmpiricalIntervalModel().fit([52, 62, 72], horizon=100)
        predictions = model.predict(epoch, rng_for())
        # first=52, all gaps 10 -> clock starts at 52 % 10 == 2.
        assert predictions == [2 + 10 * j for j in range(10)]

    def test_early_history_unchanged(self):
        """Histories that begin at chronon 0 behave exactly as before."""
        epoch = Epoch(100)
        model = EmpiricalIntervalModel().fit([0, 25, 50, 75], horizon=100)
        assert model.predict(epoch, rng_for()) == [0, 25, 50, 75]


class TestDegenerateHistories:
    @pytest.mark.parametrize(
        "name", ["homogeneous-poisson", "binned-intensity", "empirical-interval"]
    )
    def test_empty_history_predicts_nothing(self, name):
        model = make_model(name).fit([], horizon=50)
        assert model.predict(Epoch(50), rng_for()) == []

    def test_singleton_history_empirical_predicts_nothing(self):
        model = EmpiricalIntervalModel().fit([30], horizon=50)
        assert model.predict(Epoch(50), rng_for()) == []

    def test_singleton_history_poisson_still_predicts(self):
        model = HomogeneousPoissonModel().fit([30], horizon=50)
        assert model.predict(Epoch(50), rng_for()) == [25]


class TestTinyRates:
    def test_deterministic_near_dead_resource_predicts_nothing(self):
        """round(expected) == 0 must mean no predictions, not one."""
        # 1 event over 1000 chronons, predicting a 100-chronon epoch:
        # expected = 0.1 events.
        model = HomogeneousPoissonModel(deterministic=True).fit([7], horizon=1000)
        assert model.predict(Epoch(100), rng_for()) == []

    def test_deterministic_half_event_rounds_up(self):
        # expected = 0.5 rounds to 0 under banker's rounding; 0.6 to 1.
        model = HomogeneousPoissonModel(deterministic=True).fit(
            [1, 2, 3, 4, 5, 6], horizon=1000
        )
        assert model.predict(Epoch(100), rng_for()) == [50]

    def test_deterministic_spacing_regression(self):
        """The healthy-rate behaviour is untouched by the fix."""
        model = HomogeneousPoissonModel(deterministic=True).fit(
            [0, 10, 20, 30], horizon=100
        )
        assert model.predict(Epoch(100), rng_for()) == [12, 37, 62, 87]

    def test_branches_agree_on_dead_resources(self):
        history, horizon, epoch = [3], 1000, Epoch(50)
        deterministic = HomogeneousPoissonModel(True).fit(history, horizon)
        stochastic = HomogeneousPoissonModel(False).fit(history, horizon)
        assert deterministic.predict(epoch, rng_for()) == []
        # expected = 0.05: virtually every draw is 0 events.
        assert stochastic.predict(epoch, rng_for(1)) == []


class TestEpochBoundaries:
    def test_out_of_epoch_candidates_dropped_not_clamped(self):
        epoch = Epoch(10)
        assert _distinct_sorted([-3, 0, 4, 9, 10, 25], epoch) == [0, 4, 9]

    def test_no_boundary_pileup(self):
        """Overshoots used to collapse onto the last chronon."""
        epoch = Epoch(10)
        assert _distinct_sorted([12, 15, 300], epoch) == []


ESTIMATOR_STRATEGY = st.sampled_from(
    ["homogeneous-poisson", "binned-intensity", "empirical-interval"]
)


@settings(max_examples=60, deadline=None)
@given(
    name=ESTIMATOR_STRATEGY,
    seed=st.integers(0, 10_000),
    num_events=st.integers(0, 40),
    horizon=st.integers(10, 200),
    epoch_len=st.integers(5, 150),
)
def test_property_predictions_in_epoch_strictly_increasing(
    name, seed, num_events, horizon, epoch_len
):
    """Every estimator: predictions inside the epoch, strictly increasing."""
    rng = rng_for(seed)
    history = sorted(int(c) for c in rng.integers(0, horizon, size=num_events))
    model = make_model(name).fit(history, horizon=horizon)
    epoch = Epoch(epoch_len)
    predictions = model.predict(epoch, rng_for(seed + 1))
    assert all(epoch.first <= c <= epoch.last for c in predictions)
    assert all(b > a for a, b in zip(predictions, predictions[1:]))
