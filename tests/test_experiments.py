"""Shape tests for the experiment drivers (tiny scale, few repetitions).

Each test runs a paper experiment at a very small scale and asserts the
*qualitative* property the figure demonstrates, not absolute numbers.
"""

import pytest

from repro.experiments import (
    ablations,
    fig09_preemption,
    fig10_vs_offline,
    fig11_scalability,
    fig12_workload,
    fig13_budget,
    fig14_skew,
    fig15_noise,
    model_quality,
    panorama,
    runtime_table,
    table1_config,
)
from repro.experiments.cli import (
    EXPERIMENTS,
    build_parser,
    main,
    render_result,
    run_one,
    try_chart,
)

SCALE = 0.12
REPS = 2


@pytest.fixture(scope="module")
def fig12_result():
    return fig12_workload.run(scale=SCALE, seed=3, repetitions=REPS)


@pytest.fixture(scope="module")
def fig13_result():
    return fig13_budget.run(scale=SCALE, seed=3, repetitions=REPS)


class TestTable1:
    def test_all_defaults_verified(self):
        result = table1_config.run()
        assert all(row[-1] for row in result.rows)
        assert len(result.rows) == 10


class TestFig9:
    def test_rank_policies_gain_from_preemption(self):
        result = fig09_preemption.run(scale=SCALE, seed=1, repetitions=REPS)
        by_policy = {row[0]: (row[1], row[2]) for row in result.rows}
        # MRSF and M-EDF should benefit from preemption.
        assert by_policy["MRSF"][1] >= by_policy["MRSF"][0] - 0.02
        assert by_policy["M-EDF"][1] >= by_policy["M-EDF"][0] - 0.02

    def test_completeness_in_unit_range(self):
        result = fig09_preemption.run(scale=SCALE, seed=2, repetitions=1)
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0 and 0.0 <= row[2] <= 1.0


class TestFig10:
    def test_shapes(self):
        result = fig10_vs_offline.run(scale=SCALE, seed=5, repetitions=REPS)
        mrsf = result.series("MRSF(P) %")
        sedf = result.series("S-EDF(P) %")
        offline = result.series("offline %")
        # Completeness (as % of bound) trends down with rank.
        assert mrsf[0] >= mrsf[-1]
        # MRSF is never dominated: at least as good as S-EDF(P) everywhere.
        assert all(m >= s - 1e-6 for m, s in zip(mrsf, sedf))
        # Rank 1: every online policy achieves the bound.
        assert result.rows[0][3] == pytest.approx(100.0)
        # MRSF beats the paper-mode offline baseline on most ranks.
        wins = sum(1 for m, o in zip(mrsf, offline) if m >= o)
        assert wins >= len(mrsf) - 1


class TestRuntime:
    def test_offline_slower_and_diverging(self):
        result = runtime_table.run(scale=SCALE, seed=1, repetitions=1)
        ratios = [row[-1] for row in result.rows]
        # Offline is clearly slower at the largest instance, and the gap
        # widens with size (the split-interval graph is O(N^2)).
        assert ratios[-1] > 3.0
        assert ratios[-1] > ratios[0]

    def test_medf_costlier_than_sedf(self):
        # Use the Figure 11 sweep (larger, denser instances) where the
        # O(rank) cost of M-EDF value evaluation shows up reliably.
        result = fig11_scalability.run(scale=0.2, seed=1, repetitions=1)
        sedf = result.series("S-EDF total s")
        medf = result.series("M-EDF total s")
        assert sum(medf) > sum(sedf)


class TestFig11:
    def test_total_runtime_grows_with_profiles(self):
        result = fig11_scalability.run(scale=SCALE, seed=1, repetitions=1)
        totals = result.series("MRSF total s")
        assert totals[-1] > totals[0]

    def test_eis_grow_with_profiles(self):
        result = fig11_scalability.run(scale=SCALE, seed=1, repetitions=1)
        eis = result.series("EIs")
        assert eis == sorted(eis)


class TestFig12:
    def test_completeness_decreases_with_intensity(self, fig12_result):
        mrsf = fig12_result.series("MRSF(P)")
        assert mrsf[0] > mrsf[-1]

    def test_mrsf_dominates_sedf_np(self, fig12_result):
        mrsf = fig12_result.series("MRSF(P)")
        sedf = fig12_result.series("S-EDF(NP)")
        assert all(m >= s - 0.02 for m, s in zip(mrsf, sedf))

    def test_medf_similar_to_mrsf(self, fig12_result):
        mrsf = fig12_result.series("MRSF(P)")
        medf = fig12_result.series("M-EDF(P)")
        assert all(abs(m - e) < 0.1 for m, e in zip(mrsf, medf))


class TestFig12Companion:
    def test_profiles_sweep_shapes(self):
        result = fig12_workload.run_profiles(scale=SCALE, seed=3, repetitions=REPS)
        mrsf = result.series("MRSF(P)")
        sedf = result.series("S-EDF(NP)")
        assert mrsf[0] > mrsf[-1]  # more profiles, less completeness
        assert all(m >= s - 0.02 for m, s in zip(mrsf, sedf))


class TestFig13:
    def test_completeness_increases_with_budget(self, fig13_result):
        mrsf = fig13_result.series("MRSF(P)")
        assert mrsf[-1] > mrsf[0]

    def test_mrsf_utilizes_budget_at_least_as_well(self, fig13_result):
        mrsf = fig13_result.series("MRSF(P)")
        sedf = fig13_result.series("S-EDF(P)")
        assert all(m >= s - 0.05 for m, s in zip(mrsf, sedf))


class TestFig14:
    def test_skew_improves_relative_completeness(self):
        result = fig14_skew.run(scale=SCALE, seed=2, repetitions=3)
        for column in ("S-EDF(NP) rel", "MRSF(P) rel", "M-EDF(P) rel"):
            series = result.series(column)
            assert series[0] == pytest.approx(1.0)
            assert series[-1] > 1.0


class TestFig15:
    def test_noise_grid_monotone(self):
        result = fig15_noise.run(scale=SCALE, seed=2, repetitions=REPS)
        # Down each row: more noise, less completeness (ends of the row).
        for row in result.rows:
            assert row[1] >= row[-1] - 0.02
        # Down the rank column at zero noise.
        clean = [row[1] for row in result.rows]
        assert clean[0] >= clean[-1]

    def test_news_part_decreases_with_rank(self):
        result = fig15_noise.run_news(scale=SCALE, seed=2, repetitions=REPS)
        series = result.series("M-EDF(P)")
        assert series[0] > series[-1]


class TestAblations:
    def test_overlap_sharing_wins(self):
        result = ablations.run_overlap(scale=SCALE, seed=1, repetitions=REPS)
        assert result.rows[0][1] >= result.rows[1][1]

    def test_semantics_monotone(self):
        result = ablations.run_semantics(scale=SCALE, seed=1, repetitions=REPS)
        and_c, k_of_n, any_c = (row[1] for row in result.rows)
        assert and_c <= k_of_n + 0.02
        assert k_of_n <= any_c + 0.02

    def test_weighted_policy_improves_weighted_completeness(self):
        result = ablations.run_weighted(scale=SCALE, seed=1, repetitions=3)
        unweighted, weighted = (row[1] for row in result.rows)
        assert weighted >= unweighted - 0.02

    def test_offline_modes_ordering(self):
        result = ablations.run_offline_modes(scale=SCALE, seed=1, repetitions=REPS)
        paper_mode, tight_mode, __online = (row[1] for row in result.rows)
        assert tight_mode >= paper_mode

    def test_merged_table(self):
        result = ablations.run(scale=SCALE, seed=1, repetitions=1)
        labels = {row[0] for row in result.rows}
        assert len(labels) == 5

    def test_budget_shape_ablation(self):
        result = ablations.run_budget_shape(scale=SCALE, seed=1, repetitions=REPS)
        constant, shaped, anti = (row[1] for row in result.rows)
        assert shaped >= constant - 0.05  # shaping with demand never hurts much
        assert anti <= constant + 0.02  # shaping against demand never helps


class TestExtensions:
    def test_model_quality_monotone_in_hit_rate(self):
        result = model_quality.run(scale=SCALE, seed=4, repetitions=REPS)
        rows = sorted(result.rows, key=lambda row: -row[1])  # by hit rate
        completenesses = [row[3] for row in rows]
        # Perfect model leads; completeness trends with hit rate (allow
        # small inversions between close estimators).
        assert completenesses[0] == max(completenesses)
        assert completenesses[0] > completenesses[-1]

    def test_model_quality_has_all_models(self):
        result = model_quality.run(scale=SCALE, seed=4, repetitions=1)
        labels = {row[0] for row in result.rows}
        assert "perfect" in labels and "homogeneous-poisson" in labels
        assert len(labels) == 5

    def test_panorama_orders_policies_sanely(self):
        result = panorama.run(scale=SCALE, seed=4, repetitions=REPS)
        by_policy = {row[0]: row[1] for row in result.rows}
        assert by_policy["MRSF(P)"] >= by_policy["RANDOM(P)"]
        assert by_policy["M-EDF(P)"] >= by_policy["RANDOM(P)"]
        # Rows come sorted by completeness, best first.
        values = [row[1] for row in result.rows]
        assert values == sorted(values, reverse=True)

    def test_panorama_includes_clairvoyant(self):
        result = panorama.run(scale=SCALE, seed=4, repetitions=1)
        assert any(row[0] == "CLAIRVOYANT" for row in result.rows)


class TestCLI:
    def test_every_registered_experiment_is_callable(self):
        assert set(EXPERIMENTS) >= {
            "table1", "fig9", "fig10", "runtime", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig15news", "ablations",
        }

    def test_parser_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_parser_run_defaults(self):
        args = build_parser().parse_args(["run", "fig12"])
        assert args.scale == 1.0 and args.seed == 0

    def test_main_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out

    def test_main_run_one(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_run_one_with_reps_override(self):
        result = run_one("fig12", scale=SCALE, seed=0, reps=1)
        assert len(result.rows) == 5

    def test_experiment_result_series_helpers(self):
        result = table1_config.run()
        assert result.series("parameter")[0] == "w (chronons)"
        mapping = result.column_by_x("parameter", "baseline")
        assert mapping["n"] == "1000"

    def test_render_result_formats(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(
            experiment="demo", headers=["x", "y"], rows=[[1, 0.5], [2, 0.6]]
        )
        assert "| x | y" in render_result(result, "table").replace("  ", " ")
        assert render_result(result, "csv").startswith("x,y\n")
        import json

        payload = json.loads(render_result(result, "json"))
        assert payload["experiment"] == "demo"

    def test_try_chart_numeric_series(self):
        from repro.experiments.common import ExperimentResult

        numeric = ExperimentResult(
            experiment="demo", headers=["x", "y"], rows=[[1, 0.5], [2, 0.6]]
        )
        assert "y" in try_chart(numeric)
        categorical = ExperimentResult(
            experiment="demo", headers=["name", "y"], rows=[["a", 0.5], ["b", 0.6]]
        )
        assert try_chart(categorical) == ""
        short = ExperimentResult(
            experiment="demo", headers=["x", "y"], rows=[[1, 0.5]]
        )
        assert try_chart(short) == ""

    def test_main_run_with_csv_format(self, capsys):
        assert main(["run", "table1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("parameter,name,range")


class TestSummary:
    def test_self_check_all_claims_pass(self):
        from repro.experiments import summary

        result = summary.run(scale=SCALE, seed=0, repetitions=REPS)
        verdicts = result.series("verdict")
        assert len(verdicts) >= 20
        failed = [
            (row[0], row[1], row[3])
            for row in result.rows
            if row[2] != "PASS"
        ]
        assert not failed, f"claims failed: {failed}"

    def test_self_check_registered_in_cli(self):
        assert "summary" in EXPERIMENTS


class TestShardedScalability:
    def test_sharded_mode_identical_and_reported(self):
        from repro.experiments import scalability

        result = scalability.run(scale=0.05, seed=3, shards=2)
        assert "sharded engine" in result.experiment
        assert [row[-1] for row in result.rows] == ["yes"] * len(result.rows)
        speedup_column = result.series("speedup")
        assert all(s > 0 for s in speedup_column)

    def test_run_one_forwards_shards(self):
        result = run_one(
            "scalability", scale=0.05, seed=3, reps=0,
            engine="vectorized", shards=2,
        )
        assert "shards=2" in result.experiment

    def test_cli_parses_shards(self):
        args = build_parser().parse_args(
            ["run", "scalability", "--scale", "0.05", "--shards", "3"]
        )
        assert args.shards == 3
