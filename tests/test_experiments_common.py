"""Tests for the shared experiment plumbing (repro.experiments.common)."""

import numpy as np
import pytest

from repro.core.timebase import Epoch
from repro.experiments.common import (
    ExperimentResult,
    auction_instance,
    constant_budget,
    news_instance,
    poisson_instance,
    repeat_mean,
    scaled,
)
from repro.traces.noise import FPNModel
from repro.workloads.generator import GeneratorSpec
from repro.workloads.templates import LengthRule


class TestScaled:
    def test_identity_at_full_scale(self):
        assert scaled(1000, 1.0, 10) == 1000

    def test_proportional(self):
        assert scaled(1000, 0.25, 10) == 250

    def test_floor_applies(self):
        assert scaled(1000, 0.001, 50) == 50


class TestRepeatMean:
    def test_averages_vectors(self):
        calls = []

        def values(rng: np.random.Generator):
            calls.append(1)
            return [1.0, float(len(calls))]

        means = repeat_mean(values, repetitions=4, seed=0)
        assert means[0] == 1.0
        assert means[1] == pytest.approx((1 + 2 + 3 + 4) / 4)

    def test_child_rngs_differ_across_repetitions(self):
        seen = []

        def values(rng: np.random.Generator):
            seen.append(rng.random())
            return [0.0]

        repeat_mean(values, repetitions=3, seed=1)
        assert len(set(seen)) == 3

    def test_same_seed_reproduces(self):
        def values(rng: np.random.Generator):
            return [rng.random()]

        a = repeat_mean(values, 3, seed=5)
        b = repeat_mean(values, 3, seed=5)
        assert a == b


class TestInstanceBuilders:
    SPEC = GeneratorSpec(num_profiles=5, rank_max=2, max_ceis_per_profile=3)
    RULE = LengthRule.window(4)

    def test_poisson_instance(self):
        epoch = Epoch(100)
        profiles = poisson_instance(
            np.random.default_rng(1), epoch, 20, 5.0, self.SPEC, self.RULE
        )
        assert len(profiles) == 5
        assert profiles.num_ceis > 0

    def test_poisson_instance_with_noise(self):
        epoch = Epoch(100)
        noisy = poisson_instance(
            np.random.default_rng(2), epoch, 20, 5.0, self.SPEC, self.RULE,
            noise=FPNModel(z=0.0, max_shift=10),
        )
        deviations = [
            abs(ei.start - ei.true_start) for ei in noisy.eis()
        ]
        assert any(d > 0 for d in deviations)

    def test_auction_instance(self):
        epoch = Epoch(200)
        profiles = auction_instance(
            np.random.default_rng(3), epoch, 30, 300, self.SPEC, self.RULE
        )
        assert profiles.num_ceis > 0

    def test_news_instance(self):
        epoch = Epoch(200)
        profiles = news_instance(
            np.random.default_rng(4), epoch, 20, 600, self.SPEC, self.RULE
        )
        assert profiles.num_ceis > 0

    def test_constant_budget_matches_epoch(self):
        epoch = Epoch(42)
        budget = constant_budget(2.0, epoch)
        assert len(budget) == 42
        assert budget.at(0) == 2.0


class TestExperimentResult:
    def test_to_text_includes_notes(self):
        result = ExperimentResult(
            experiment="demo", headers=["x"], rows=[[1]], notes=["hello"]
        )
        text = result.to_text()
        assert "demo" in text and "note: hello" in text

    def test_series_unknown_column_raises(self):
        result = ExperimentResult(experiment="demo", headers=["x"], rows=[[1]])
        with pytest.raises(ValueError):
            result.series("nope")

    def test_column_by_x(self):
        result = ExperimentResult(
            experiment="demo", headers=["x", "y"], rows=[[1, "a"], [2, "b"]]
        )
        assert result.column_by_x("x", "y") == {1: "a", 2: "b"}
