"""Failure injection and boundary conditions for the online engine.

A production monitor must fail loudly on misuse and behave sensibly at
the edges of the model: epoch boundaries, degenerate windows, malformed
arrival streams, and misbehaving policies.
"""

import pytest

from repro.core.errors import ModelError
from repro.core.intervals import ExecutionInterval
from repro.core.profile import ProfileSet
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.arrivals import arrivals_from_profiles
from repro.online.monitor import OnlineMonitor
from repro.policies import SEDF
from repro.policies.base import Policy
from tests.conftest import make_cei


class ExplodingPolicy(Policy):
    """A policy whose ranking function raises after N calls."""

    name = "EXPLODING"

    def __init__(self, fuse: int = 3) -> None:
        self._fuse = fuse

    def priority(self, ei, chronon, view):
        self._fuse -= 1
        if self._fuse < 0:
            raise RuntimeError("policy exploded")
        return 0.0


class MixedTypePolicy(Policy):
    """A policy returning incomparable priority types across candidates."""

    name = "MIXED-PRIORITY"

    def __init__(self) -> None:
        self._flip = False

    def priority(self, ei, chronon, view):
        self._flip = not self._flip
        return None if self._flip else 1.0  # type: ignore[return-value]


class TestPolicyFailures:
    def test_policy_exception_propagates(self):
        """Engine does not swallow policy errors — they surface loudly."""
        profiles = ProfileSet.from_ceis(
            [make_cei((r, 0, 5)) for r in range(5)]
        )
        monitor = OnlineMonitor(ExplodingPolicy(fuse=2), BudgetVector.constant(1, 10))
        with pytest.raises(RuntimeError, match="exploded"):
            monitor.run(Epoch(10), arrivals_from_profiles(profiles))

    def test_incomparable_priorities_surface_as_type_error(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 3)), make_cei((1, 0, 7))]
        )
        monitor = OnlineMonitor(MixedTypePolicy(), BudgetVector.constant(1, 10))
        with pytest.raises(TypeError):
            monitor.run(Epoch(10), arrivals_from_profiles(profiles))


class TestMalformedArrivals:
    def test_duplicate_cei_in_arrival_stream_rejected(self):
        cei = make_cei((0, 0, 5))
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 10))
        monitor.step(0, [cei])
        with pytest.raises(ModelError, match="twice"):
            monitor.step(1, [cei])

    def test_late_arrival_with_expired_window_counts_failed(self):
        cei = make_cei((0, 0, 2))
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 10))
        monitor.step(0)
        monitor.step(5, [cei])  # window already gone
        assert monitor.pool.num_failed == 1
        assert monitor.probes_used == 0

    def test_late_arrival_mid_window_still_capturable(self):
        cei = make_cei((0, 0, 8))
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 10))
        monitor.step(0)
        monitor.step(4, [cei])
        monitor.step(5)
        assert monitor.pool.num_satisfied == 1


class TestBoundaries:
    def test_ei_at_last_chronon(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 9, 9))])
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 10))
        monitor.run(Epoch(10), arrivals_from_profiles(profiles))
        assert monitor.pool.num_satisfied == 1

    def test_ei_spanning_whole_epoch(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 9))])
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 10))
        monitor.run(Epoch(10), arrivals_from_profiles(profiles))
        assert monitor.pool.num_satisfied == 1

    def test_ei_beyond_epoch_never_expires_during_run(self):
        """A window ending past the epoch is simply never completed nor
        failed by expiry — the run ends with it open."""
        profiles = ProfileSet.from_ceis([make_cei((0, 5, 50), (1, 60, 80))])
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 10))
        monitor.run(Epoch(10), arrivals_from_profiles(profiles))
        assert monitor.pool.num_open == 1

    def test_budget_shorter_than_epoch_raises_at_boundary(self):
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 5))
        with pytest.raises(ModelError, match="budget"):
            monitor.run(Epoch(10), {})

    def test_fractional_budget_below_cost_never_probes(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 5))])
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(0.5, 10))
        monitor.run(Epoch(10), arrivals_from_profiles(profiles))
        assert monitor.probes_used == 0

    def test_single_chronon_epoch(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 0))])
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 1))
        monitor.run(Epoch(1), arrivals_from_profiles(profiles))
        assert monitor.pool.num_satisfied == 1

    def test_equal_true_and_scheduling_boundary_probe(self):
        # Probe at the exact shared boundary chronon of both windows.
        ei = ExecutionInterval(
            resource=0, start=3, finish=7, true_start=7, true_finish=11
        )
        from repro.core.intervals import ComplexExecutionInterval
        from repro.core.metrics import gained_completeness

        profiles = ProfileSet.from_ceis([ComplexExecutionInterval(eis=(ei,))])
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 12))
        schedule = monitor.run(Epoch(12), arrivals_from_profiles(profiles))
        # The monitor probes inside [3, 7]; only a probe exactly at 7
        # would also satisfy the true window.  Whichever happened, the
        # scoring must be consistent with the schedule.
        truth = gained_completeness(profiles, schedule)
        assert truth in (0.0, 1.0)
        assert truth == float(
            any(schedule.is_probed(0, t) for t in range(7, 12))
        )


class TestResourceLevelPolicyRobustness:
    def test_select_resources_overrun_is_clipped(self):
        """A resource-level policy returning more picks than the budget
        allows only spends the budget."""

        class Greedy(Policy):
            name = "GREEDY-SELECT"

            def priority(self, ei, chronon, view):
                return 0.0

            def select_resources(self, chronon, limit, view):
                return list(range(10))  # ignores the limit hint

        profiles = ProfileSet.from_ceis([make_cei((r, 0, 5)) for r in range(10)])
        monitor = OnlineMonitor(Greedy(), BudgetVector.constant(2, 10))
        monitor.run(Epoch(10), arrivals_from_profiles(profiles))
        monitor.check_budget_feasible()

    def test_select_resources_with_unknown_resource_ids(self):
        class Confused(Policy):
            name = "CONFUSED-SELECT"

            def priority(self, ei, chronon, view):
                return 0.0

            def select_resources(self, chronon, limit, view):
                return [999]  # nothing lives there

        profiles = ProfileSet.from_ceis([make_cei((0, 0, 5))])
        monitor = OnlineMonitor(Confused(), BudgetVector.constant(1, 10))
        monitor.run(Epoch(10), arrivals_from_profiles(profiles))
        # The probe is spent (and wasted) but nothing crashes.
        assert monitor.pool.num_satisfied == 0
        monitor.check_budget_feasible()
