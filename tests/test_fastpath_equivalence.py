"""Engine equivalence: the vectorized fast path must match the reference.

The vectorized engine is only admissible because it is *bit-for-bit*
indistinguishable from the reference Algorithm 1 transcription: same
probe schedules, same capture bookkeeping, same completeness — across
policies, execution modes, overlap ablation, heterogeneous probe costs
and push resources.  These tests enforce that contract on seeded random
instances and on a hypothesis-generated family.

RANDOM is the one documented exclusion: its priority draws depend on
candidate iteration order, so the two engines consume the RNG
differently.  It stays seeded-reproducible *within* an engine, which is
what its test asserts.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resource import Resource, ResourcePool
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.arrivals import arrival_map
from repro.online.config import MonitorConfig
from repro.online import fastpath
from repro.online.faults import FailureModel, Outage, RetryPolicy
from repro.online.health import HealthConfig
from repro.online.monitor import OnlineMonitor
from repro.online.shedding import SheddingConfig
from repro.policies import MRSF, make_policy
from tests.conftest import random_general_instance

PAPER_POLICIES = ["S-EDF", "MRSF", "M-EDF"]
WEIGHTED_POLICIES = ["W-S-EDF", "W-MRSF", "W-M-EDF"]
FALLBACK_POLICIES = ["FIFO", "ROUND-ROBIN", "WIC", "EXPECTED-GAIN"]
RELIABILITY_POLICIES = ["EG-S-EDF", "EG-MRSF", "EG-M-EDF", "EG-W-MRSF"]

NUM_CHRONONS = 30


def _instance(seed: int, num_ceis: int = 40):
    rng = np.random.default_rng(seed)
    profiles = random_general_instance(
        rng,
        num_resources=8,
        num_chronons=NUM_CHRONONS,
        num_ceis=num_ceis,
        max_rank=4,
        max_width=5,
    )
    return arrival_map(cei for profile in profiles for cei in profile.ceis)


def _run(
    engine: str,
    policy,
    arrivals,
    budget: float = 2.0,
    faults=None,
    retry=None,
    health=None,
    shedding=None,
    **kwargs,
) -> OnlineMonitor:
    monitor = OnlineMonitor(
        policy=policy,
        budget=BudgetVector.constant(budget, NUM_CHRONONS),
        config=MonitorConfig(
            engine=engine, faults=faults, retry=retry, health=health,
            shedding=shedding,
        ),
        **kwargs,
    )
    monitor.run(Epoch(NUM_CHRONONS), arrivals)
    monitor.check_budget_feasible()
    return monitor


def assert_engines_agree(policy_name: str, arrivals, budget: float = 2.0, **kwargs):
    ref = _run("reference", make_policy(policy_name), arrivals, budget, **kwargs)
    vec = _run("vectorized", make_policy(policy_name), arrivals, budget, **kwargs)
    assert vec.schedule.probes == ref.schedule.probes
    assert vec.probes_used == ref.probes_used
    assert vec.probes_failed == ref.probes_failed
    assert vec.retries_used == ref.retries_used
    assert vec.pool.num_satisfied == ref.pool.num_satisfied
    assert vec.pool.num_failed == ref.pool.num_failed
    assert vec.believed_completeness == ref.believed_completeness
    assert vec.fault_stats == ref.fault_stats
    assert vec.dropped_captures == ref.dropped_captures
    if ref.shedding_stats is not None or vec.shedding_stats is not None:
        assert vec.shedding_stats.as_dict() == ref.shedding_stats.as_dict()
    for chronon in range(NUM_CHRONONS):
        assert vec.budget_consumed_at(chronon) == ref.budget_consumed_at(chronon)
    return ref, vec


class TestKernelPolicies:
    """The batched-kernel policies across every execution mode."""

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES + WEIGHTED_POLICIES)
    @pytest.mark.parametrize("preemptive", [True, False])
    @pytest.mark.parametrize("exploit_overlap", [True, False])
    def test_schedules_identical(self, policy_name, preemptive, exploit_overlap):
        for seed in (1, 2, 3):
            assert_engines_agree(
                policy_name,
                _instance(seed),
                preemptive=preemptive,
                exploit_overlap=exploit_overlap,
            )

    def test_unit_weights_match_unweighted(self):
        """Sanity: with all weights 1 the weighted kernels change nothing."""
        arrivals = _instance(7)
        base = _run("vectorized", make_policy("MRSF"), arrivals)
        weighted = _run("vectorized", make_policy("W-MRSF"), arrivals)
        assert weighted.schedule.probes == base.schedule.probes


class TestFallbackPolicies:
    """Kernel-less policies run the reference loop over the fast pool."""

    @pytest.mark.parametrize("policy_name", FALLBACK_POLICIES)
    def test_schedules_identical(self, policy_name):
        assert_engines_agree(policy_name, _instance(4))

    def test_mrsf_profile_rank_variant_falls_back(self):
        arrivals = _instance(5)
        ref = _run("reference", MRSF(use_profile_rank=True), arrivals)
        vec = _run("vectorized", MRSF(use_profile_rank=True), arrivals)
        assert vec._kernel is None  # the variant reads profile state
        assert vec.schedule.probes == ref.schedule.probes

    def test_random_policy_reproducible_per_engine(self):
        """RANDOM is excluded from cross-engine equality by design."""
        arrivals = _instance(6)
        runs = [
            _run(engine, make_policy("RANDOM", seed=99), arrivals)
            for engine in ("vectorized", "vectorized", "reference", "reference")
        ]
        assert runs[0].schedule.probes == runs[1].schedule.probes
        assert runs[2].schedule.probes == runs[3].schedule.probes


class TestResourceModels:
    """Cost and push extensions must survive vectorization untouched."""

    @staticmethod
    def _pool(push: bool = False) -> ResourcePool:
        return ResourcePool(
            [
                Resource(
                    rid=i,
                    name=f"r{i}",
                    probe_cost=1.0 + (i % 3),
                    push_enabled=push and i % 2 == 0,
                )
                for i in range(8)
            ]
        )

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    @pytest.mark.parametrize("preemptive", [True, False])
    def test_heterogeneous_costs(self, policy_name, preemptive):
        assert_engines_agree(
            policy_name,
            _instance(8),
            budget=3.0,
            resources=self._pool(),
            preemptive=preemptive,
        )

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    def test_push_resources(self, policy_name):
        ref, vec = assert_engines_agree(
            policy_name, _instance(9), budget=2.0, resources=self._pool(push=True)
        )
        # The instance is dense enough that pushes actually fired.
        assert ref.schedule.num_probes > ref.probes_used

    def test_incremental_budget_matches_schedule_rescan(self):
        """budget_consumed_at must equal a from-scratch schedule rescan."""
        resources = self._pool(push=True)
        vec = _run(
            "vectorized", make_policy("MRSF"), _instance(10), 3.0, resources=resources
        )
        for chronon in range(NUM_CHRONONS):
            expected = sum(
                resources.probe_cost(rid)
                for rid in vec.schedule.probes_at(chronon)
                if (rid, chronon) not in vec._push_probes
            )
            assert vec.budget_consumed_at(chronon) == pytest.approx(expected)


class TestFaultEquivalence:
    """Seeded fault scripts must not open daylight between the engines.

    FailureModel verdicts are pure functions of (resource, chronon,
    attempt), so the engines' different internal probe orders see the
    same fault universe; these tests pin that contract, retries and
    backoff included.
    """

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES + FALLBACK_POLICIES)
    @pytest.mark.parametrize("rate", [0.2, 0.5])
    def test_random_failures(self, policy_name, rate):
        ref, vec = assert_engines_agree(
            policy_name,
            _instance(11),
            faults=FailureModel(rate=rate, seed=5),
        )
        assert ref.probes_failed > 0  # the fault path actually exercised

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    @pytest.mark.parametrize("max_retries", [1, 3])
    def test_failures_with_retries(self, policy_name, max_retries):
        ref, vec = assert_engines_agree(
            policy_name,
            _instance(12),
            faults=FailureModel(rate=0.4, seed=6),
            retry=RetryPolicy(max_retries=max_retries),
        )
        assert ref.retries_used > 0

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    def test_backoff(self, policy_name):
        assert_engines_agree(
            policy_name,
            _instance(13),
            faults=FailureModel(rate=0.5, seed=7),
            retry=RetryPolicy(max_retries=1, backoff_base=1.0, backoff_cap=4),
        )

    def test_scripted_faults_and_outages(self):
        script = {(r, t): 1 for r in range(8) for t in range(0, NUM_CHRONONS, 3)}
        faults = FailureModel(
            script=script,
            outages=(Outage(resource=2, start=5, finish=15),),
            seed=8,
        )
        ref, vec = assert_engines_agree("MRSF", _instance(14), faults=faults)
        # Outage chronons never even attempt resource 2.
        for chronon in range(5, 16):
            assert not ref.schedule.is_probed(2, chronon)

    def test_faults_with_heterogeneous_costs_and_push(self):
        pool = ResourcePool(
            [
                Resource(
                    rid=i,
                    name=f"r{i}",
                    probe_cost=1.0 + (i % 3),
                    push_enabled=i % 2 == 0,
                )
                for i in range(8)
            ]
        )
        assert_engines_agree(
            "MRSF",
            _instance(15),
            budget=3.0,
            resources=pool,
            faults=FailureModel(rate=0.3, seed=9),
            retry=RetryPolicy(max_retries=2),
        )


class TestReliabilityEquivalence:
    """The reliability extensions must not open daylight between engines.

    Expected-gain policies score rows resource-dependently (the batched
    kernel divides by a p_success array), partial verdicts drop
    individual EIs from otherwise-successful probes, and rate schedules
    make the effective failure rate chronon-dependent.  All three must
    produce bit-identical schedules, fault statistics and dropped-capture
    sets on both engines.
    """

    HETEROGENEOUS = {1: 0.7, 3: 0.05, 5: 0.4}

    @pytest.mark.parametrize("policy_name", RELIABILITY_POLICIES)
    def test_expected_gain_policies(self, policy_name):
        ref, vec = assert_engines_agree(
            policy_name,
            _instance(16),
            faults=FailureModel(rate=0.25, per_resource=self.HETEROGENEOUS, seed=10),
            retry=RetryPolicy(max_retries=2),
        )
        assert ref.probes_failed > 0

    @pytest.mark.parametrize("policy_name", ["MRSF", "EG-MRSF"])
    @pytest.mark.parametrize("exploit_overlap", [True, False])
    def test_partial_verdicts(self, policy_name, exploit_overlap):
        ref, vec = assert_engines_agree(
            policy_name,
            _instance(17),
            faults=FailureModel(rate=0.2, seed=11, partial_rate=0.4),
            retry=RetryPolicy(max_retries=1),
            exploit_overlap=exploit_overlap,
        )
        if exploit_overlap:
            assert ref.dropped_captures  # partial drops actually exercised

    @pytest.mark.parametrize("policy_name", ["S-EDF", "EG-S-EDF"])
    def test_rate_schedule(self, policy_name):
        faults = FailureModel(
            rate=0.15,
            seed=12,
            rate_schedule=[(5, 12, 3.0), (20, 25, 0.0)],
        )
        ref, vec = assert_engines_agree(
            policy_name, _instance(18), faults=faults,
            retry=RetryPolicy(max_retries=1),
        )
        assert ref.probes_failed > 0

    def test_combined_reliability_model(self):
        """Everything at once: EG policy, partials, schedule, outage, retry."""
        faults = FailureModel(
            rate=0.25,
            per_resource=self.HETEROGENEOUS,
            outages=(Outage(resource=4, start=8, finish=14),),
            seed=13,
            partial_rate=0.3,
            rate_schedule=[(10, 20, 1.5)],
        )
        ref, vec = assert_engines_agree(
            "EG-MRSF",
            _instance(19),
            budget=3.0,
            faults=faults,
            retry=RetryPolicy(max_retries=2, backoff_base=1.0, backoff_cap=4),
        )
        assert ref.probes_failed > 0 and ref.dropped_captures
        # The outage fix: a known-down resource is never even attempted.
        for chronon in range(8, 15):
            assert not ref.schedule.is_probed(4, chronon)

    def test_legacy_per_attempt_draws_agree_across_engines(self):
        """The legacy draw scheme is a different universe, same contract."""
        assert_engines_agree(
            "MRSF",
            _instance(20),
            faults=FailureModel(rate=0.3, seed=14, per_attempt_draws=True),
            retry=RetryPolicy(max_retries=1),
        )


@contextlib.contextmanager
def topk_knobs(enabled=True, overflow=None, growth=None):
    """Temporarily override the top-k module knobs, restoring on exit."""
    saved = (fastpath.TOPK_ENABLED, fastpath.TOPK_OVERFLOW, fastpath.TOPK_GROWTH)
    try:
        fastpath.TOPK_ENABLED = enabled
        if overflow is not None:
            fastpath.TOPK_OVERFLOW = overflow
        if growth is not None:
            fastpath.TOPK_GROWTH = growth
        yield
    finally:
        fastpath.TOPK_ENABLED, fastpath.TOPK_OVERFLOW, fastpath.TOPK_GROWTH = saved


class TestTopKSelection:
    """Top-k phase selection only reorders *when* keys materialize.

    The phase walk must see the identical candidate sequence whether the
    bag is fully lexsorted up front or materialized in argpartition
    slices.  Shrinking ``TOPK_OVERFLOW`` to zero and growth to 2 forces
    the widening path — bound violations from the overlay heap, stream
    exhaustion mid-phase, tie absorption at the cut — on instances small
    enough that the default knobs would never widen.
    """

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES + WEIGHTED_POLICIES)
    @pytest.mark.parametrize("preemptive", [True, False])
    def test_tiny_cuts_force_widening(self, policy_name, preemptive):
        with topk_knobs(overflow=0, growth=2):
            for seed in (31, 32):
                assert_engines_agree(
                    policy_name,
                    _instance(seed),
                    budget=1.0,  # cut of ~1 row per phase: maximal widening
                    preemptive=preemptive,
                )

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES)
    def test_disabled_equals_enabled(self, policy_name):
        arrivals = _instance(33)
        with topk_knobs(enabled=True):
            topk = _run("vectorized", make_policy(policy_name), arrivals)
        with topk_knobs(enabled=False):
            full = _run("vectorized", make_policy(policy_name), arrivals)
        assert topk.schedule.probes == full.schedule.probes
        assert topk.believed_completeness == full.believed_completeness

    @pytest.mark.parametrize("policy_name", ["MRSF", "EG-MRSF", "LEG-MRSF"])
    def test_tiny_cuts_under_faults(self, policy_name):
        """Widening interleaved with fault skips and overlay re-ranks."""
        health = HealthConfig() if policy_name.startswith("LEG") else None
        with topk_knobs(overflow=0, growth=2):
            ref, vec = assert_engines_agree(
                policy_name,
                _instance(34),
                budget=1.0,
                faults=FailureModel(rate=0.4, seed=21, partial_rate=0.3),
                retry=RetryPolicy(max_retries=2),
                health=health,
            )
        assert ref.probes_failed > 0

    def test_tiny_cuts_with_heterogeneous_costs(self):
        """Non-unit probe costs shrink the budget-derived initial cut."""
        pool = ResourcePool(
            [Resource(rid=i, name=f"r{i}", probe_cost=1.0 + (i % 3)) for i in range(8)]
        )
        with topk_knobs(overflow=0, growth=2):
            assert_engines_agree("MRSF", _instance(35), budget=3.0, resources=pool)

    def test_mirror_reallocs_grow_logarithmically(self):
        """Counter sanity: syncing after every register stays O(log n)."""
        from repro.online.fastpath import FastCandidatePool

        rng = np.random.default_rng(40)
        profiles = random_general_instance(
            rng,
            num_resources=8,
            num_chronons=NUM_CHRONONS,
            num_ceis=120,
            max_rank=4,
            max_width=5,
        )
        pool = FastCandidatePool()
        for profile in profiles:
            for cei in profile.ceis:
                pool.register(cei, cei.release)
                pool.sync_mirrors()
        rows = len(pool.row_seq)
        assert rows > 100
        assert pool.mirror_reallocs <= 2 * (int(np.ceil(np.log2(rows))) + 2)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    policy_name=st.sampled_from(PAPER_POLICIES),
    overflow=st.sampled_from([0, 1, 4]),
    budget=st.sampled_from([1.0, 2.0]),
    preemptive=st.booleans(),
)
def test_property_topk_widening_agrees(
    seed, policy_name, overflow, budget, preemptive
):
    """Property form: any cut size, the widening walk stays bit-identical."""
    with topk_knobs(overflow=overflow, growth=2):
        assert_engines_agree(
            policy_name,
            _instance(seed, num_ceis=25),
            budget=budget,
            preemptive=preemptive,
        )


LEARNED_POLICIES = ["LEG-S-EDF", "LEG-MRSF", "LEG-M-EDF"]
SLO_POLICIES = ["SLO-MRSF", "LSLO-S-EDF", "LSLO-MRSF", "LSLO-M-EDF"]


class TestLearnedHealthEquivalence:
    """Learned estimates, breakers and SLO discounts stay bit-identical.

    The learned policies rank by health estimates that shift every
    chronon, the breaker masks resources in and out of the candidate
    set, and the SLO kernel exponentiates p_success by per-client
    weights — each a fresh opportunity for the scalar and batched paths
    to disagree.  Health stats are asserted equal too: both engines
    must feed the estimator the same observation stream.
    """

    def _agree(self, policy_name, arrivals, health, **kwargs):
        ref, vec = assert_engines_agree(
            policy_name, arrivals, health=health, **kwargs
        )
        if health is not None:
            assert ref.health_stats.as_dict() == vec.health_stats.as_dict()
        return ref, vec

    @pytest.mark.parametrize("policy_name", LEARNED_POLICIES)
    def test_learned_expected_gain(self, policy_name):
        ref, vec = self._agree(
            policy_name,
            _instance(21),
            HealthConfig(),
            faults=FailureModel(rate=0.3, per_resource={2: 0.8}, seed=15),
            retry=RetryPolicy(max_retries=2),
        )
        assert ref.probes_failed > 0
        assert ref.health_stats.observations == ref.probes_used

    @pytest.mark.parametrize(
        "health",
        [
            HealthConfig(estimator="ewma", ewma_alpha=0.3),
            HealthConfig(decay=0.9),
            HealthConfig(estimator="ewma", ewma_alpha=0.5, decay=0.8),
        ],
        ids=["ewma", "beta-decay", "ewma-decay"],
    )
    def test_estimator_variants(self, health):
        self._agree(
            "LEG-MRSF",
            _instance(22),
            health,
            faults=FailureModel(rate=0.35, seed=16),
            retry=RetryPolicy(max_retries=1),
        )

    def test_circuit_breaker_masks_identically(self):
        health = HealthConfig(
            breaker=True, breaker_failures=2, cooldown=3, cooldown_factor=2.0
        )
        ref, vec = self._agree(
            "LEG-MRSF",
            _instance(23),
            health,
            faults=FailureModel(rate=0.2, per_resource={0: 1.0, 4: 0.9}, seed=17),
            retry=RetryPolicy(max_retries=1),
        )
        assert ref.health_stats.opens >= 1
        assert ref.health_stats.short_circuited > 0

    @pytest.mark.parametrize("policy_name", SLO_POLICIES)
    def test_slo_weighted_discounts(self, policy_name):
        # random_general_instance draws non-unit CEI weights, so the
        # utility exponent in the SLO kernel is genuinely exercised.
        health = HealthConfig() if policy_name.startswith("LSLO") else None
        ref, vec = self._agree(
            policy_name,
            _instance(24),
            health,
            faults=FailureModel(rate=0.3, per_resource={1: 0.7}, seed=18),
            retry=RetryPolicy(max_retries=2),
        )
        assert ref.probes_failed > 0

    @pytest.mark.parametrize("policy_name", ["MRSF", "LEG-MRSF"])
    def test_partial_retry_reprobes(self, policy_name):
        health = HealthConfig() if policy_name.startswith("LEG") else None
        ref, vec = self._agree(
            policy_name,
            _instance(25),
            health,
            budget=3.0,
            faults=FailureModel(
                rate=0.1, partial_rate=0.5, per_attempt_draws=True, seed=19
            ),
            retry=RetryPolicy(max_retries=2, retry_partials=True),
        )
        assert ref.retries_used > 0
        assert ref.dropped_captures

    def test_combined_learned_stack(self):
        """Everything at once: learned SLO, breaker, partials, schedule."""
        faults = FailureModel(
            rate=0.25,
            per_resource={1: 0.8, 6: 0.6},
            outages=(Outage(resource=3, start=5, finish=9),),
            seed=20,
            partial_rate=0.3,
            per_attempt_draws=True,
            rate_schedule=[(12, 18, 2.0)],
        )
        health = HealthConfig(
            estimator="ewma",
            ewma_alpha=0.4,
            decay=0.95,
            breaker=True,
            breaker_failures=3,
            cooldown=4,
        )
        ref, vec = self._agree(
            "LSLO-MRSF",
            _instance(26),
            health,
            budget=3.0,
            faults=faults,
            retry=RetryPolicy(
                max_retries=2, backoff_base=1.0, backoff_cap=4, retry_partials=True
            ),
        )
        assert ref.probes_failed > 0 and ref.dropped_captures


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    policy_name=st.sampled_from(LEARNED_POLICIES + ["LSLO-MRSF"]),
    rate=st.sampled_from([0.2, 0.5]),
    breaker=st.booleans(),
    retry_partials=st.booleans(),
)
def test_property_engines_agree_with_learned_health(
    seed, policy_name, rate, breaker, retry_partials
):
    """Property form: learned health never opens daylight between engines."""
    health = HealthConfig(breaker=breaker, breaker_failures=2, cooldown=3)
    assert_engines_agree(
        policy_name,
        _instance(seed, num_ceis=25),
        faults=FailureModel(rate=rate, partial_rate=0.2, seed=seed + 1),
        retry=RetryPolicy(max_retries=1, retry_partials=retry_partials),
        health=health,
    )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    policy_name=st.sampled_from(PAPER_POLICIES + WEIGHTED_POLICIES),
    preemptive=st.booleans(),
    exploit_overlap=st.booleans(),
    budget=st.sampled_from([1.0, 2.0]),
)
def test_property_engines_agree(seed, policy_name, preemptive, exploit_overlap, budget):
    """Property form: any seeded instance, any mode, identical schedules."""
    assert_engines_agree(
        policy_name,
        _instance(seed, num_ceis=25),
        budget=budget,
        preemptive=preemptive,
        exploit_overlap=exploit_overlap,
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    policy_name=st.sampled_from(PAPER_POLICIES + RELIABILITY_POLICIES),
    rate=st.sampled_from([0.1, 0.3, 0.6]),
    max_retries=st.integers(0, 2),
    partial_rate=st.sampled_from([0.0, 0.5]),
)
def test_property_engines_agree_under_faults(
    seed, policy_name, rate, max_retries, partial_rate
):
    """Property form with nonzero failure rates and retry policies."""
    assert_engines_agree(
        policy_name,
        _instance(seed, num_ceis=25),
        faults=FailureModel(rate=rate, seed=seed + 1, partial_rate=partial_rate),
        retry=RetryPolicy(max_retries=max_retries) if max_retries else None,
    )


class TestSheddingEquivalence:
    """Tiered load shedding must not open daylight between engines.

    The shedder's victim choice is a pure function of per-CEI state both
    engines agree on at every chronon, so enabling it (even under forced
    auto-engine migrations) must keep the schedules bit-identical.
    """

    #: Aggressive thresholds: a budget-1 run over these instances enters
    #: overload within a few chronons and sheds repeatedly.
    SHED = SheddingConfig(
        overload_on=1.5,
        overload_off=1.1,
        sustain=2,
        target_ratio=1.0,
        soft_weight=3.0,
        hard_weight=6.0,
    )

    @staticmethod
    def _tiered_arrivals(seed: int, num_ceis: int = 40):
        """A seeded instance with cycling utility classes (1, 3, 8)."""
        rng = np.random.default_rng(seed)
        profiles = random_general_instance(
            rng,
            num_resources=8,
            num_chronons=NUM_CHRONONS,
            num_ceis=num_ceis,
            max_rank=4,
            max_width=5,
        )
        weights = (1.0, 1.0, 3.0, 1.0, 8.0)
        for index, cei in enumerate(
            cei for profile in profiles for cei in profile.ceis
        ):
            cei.weight = weights[index % len(weights)]
        return arrival_map(cei for profile in profiles for cei in profile.ceis)

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES + WEIGHTED_POLICIES)
    @pytest.mark.parametrize("preemptive", [True, False])
    def test_shed_schedules_identical(self, policy_name, preemptive):
        for seed in (31, 32):
            ref, vec = assert_engines_agree(
                policy_name,
                self._tiered_arrivals(seed),
                budget=1.0,
                preemptive=preemptive,
                shedding=self.SHED,
            )
            assert ref.shedding_stats.shed_ceis > 0

    def test_shedding_actually_fires(self):
        ref, __ = assert_engines_agree(
            "M-EDF", self._tiered_arrivals(33), budget=1.0, shedding=self.SHED
        )
        stats = ref.shedding_stats
        assert stats.overload_chronons > 0
        assert stats.episodes >= 1
        assert stats.shed_ceis > 0
        assert "hard" not in stats.shed_by_tier

    def test_never_triggered_config_matches_disabled(self):
        """An armed-but-idle shedder is bit-identical to shedding=None."""
        inert = SheddingConfig(overload_on=1e9, overload_off=1e9 - 1)
        arrivals = self._tiered_arrivals(34)
        for engine in ("reference", "vectorized"):
            plain = _run(engine, make_policy("M-EDF"), arrivals, budget=1.0)
            armed = _run(
                engine, make_policy("M-EDF"), arrivals,
                budget=1.0, shedding=inert,
            )
            assert armed.schedule.probes == plain.schedule.probes
            assert armed.shedding_stats.shed_ceis == 0
            assert armed.shedding_stats.released_eis == 0
            assert plain.shedding_stats is None

    def test_auto_migrations_with_shedding(self, monkeypatch):
        """Forced mid-run pool migrations carry the released-seq set."""
        from repro.online import dispatch

        arrivals = self._tiered_arrivals(35)
        budget = BudgetVector.constant(1.0, NUM_CHRONONS)
        ref = _run(
            "reference", make_policy("M-EDF"), arrivals,
            budget=1.0, shedding=self.SHED,
        )
        # Straddle the thresholds around the shedding run's own bag
        # trajectory so the auto run migrates in both directions.
        probe = OnlineMonitor(
            make_policy("M-EDF"),
            budget,
            config=MonitorConfig(engine="reference", shedding=self.SHED),
        )
        bags = []
        for chronon in range(NUM_CHRONONS):
            probe.step(chronon, arrivals.get(chronon, ()))
            bags.append(probe.pool.num_active())
        positive = [bag for bag in bags if bag > 0]
        dense = float(np.percentile(positive, 60))
        sparse = min(float(np.percentile(positive, 40)), dense - 0.5)
        monkeypatch.setattr(dispatch, "DENSE_THRESHOLD", dense)
        monkeypatch.setattr(dispatch, "SPARSE_THRESHOLD", sparse)
        monkeypatch.setattr(dispatch, "MIN_DWELL", 2)
        auto = _run(
            "auto", make_policy("M-EDF"), arrivals,
            budget=1.0, shedding=self.SHED,
        )
        assert auto.dispatch_stats.switches > 0
        assert auto.schedule.probes == ref.schedule.probes
        assert auto.shedding_stats.as_dict() == ref.shedding_stats.as_dict()
        assert ref.shedding_stats.shed_ceis > 0


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    policy_name=st.sampled_from(PAPER_POLICIES),
    preemptive=st.booleans(),
)
def test_property_engines_agree_with_shedding(seed, policy_name, preemptive):
    """Property form: shedding never opens daylight between engines."""
    assert_engines_agree(
        policy_name,
        TestSheddingEquivalence._tiered_arrivals(seed, num_ceis=30),
        budget=1.0,
        preemptive=preemptive,
        shedding=TestSheddingEquivalence.SHED,
    )


# ---------------------------------------------------------------------------
# Sharded engine equivalence
# ---------------------------------------------------------------------------


from repro.sim.arena import compile_arena  # noqa: E402

SHARD_COUNTS = [1, 2, 4, 7]


def _profiles(seed: int, num_ceis: int = 40, num_resources: int = 8,
              max_width: int = 5):
    rng = np.random.default_rng(seed)
    return random_general_instance(
        rng,
        num_resources=num_resources,
        num_chronons=NUM_CHRONONS,
        num_ceis=num_ceis,
        max_rank=4,
        max_width=max_width,
    )


def _run_arena(
    policy_name: str,
    profiles,
    budget: float = 2.0,
    shards=None,
    faults=None,
    retry=None,
    health=None,
    shedding=None,
    **kwargs,
) -> OnlineMonitor:
    """One vectorized run over a freshly compiled arena of ``profiles``."""
    arena = compile_arena(profiles)
    monitor = OnlineMonitor(
        policy=make_policy(policy_name),
        budget=BudgetVector.constant(budget, NUM_CHRONONS),
        config=MonitorConfig(
            engine="vectorized", shards=shards, faults=faults, retry=retry,
            health=health, shedding=shedding,
        ),
        arena=arena,
        **kwargs,
    )
    try:
        monitor.run(Epoch(NUM_CHRONONS), arena.arrivals)
    finally:
        monitor.close()
    monitor.check_budget_feasible()
    return monitor


def assert_sharded_agrees(
    policy_name: str, profiles, shards: int, budget: float = 2.0, **kwargs
):
    """A sharded run must be bit-identical to the single-engine run —
    and must have actually stayed sharded for its whole lifetime."""
    base = _run_arena(policy_name, profiles, budget, shards=None, **kwargs)
    cut = _run_arena(policy_name, profiles, budget, shards=shards, **kwargs)
    stats = cut.sharding_stats
    assert stats is not None and stats.shards == shards
    assert stats.demotions == 0, stats.demote_reason
    assert stats.phases > 0
    assert cut.schedule.probes == base.schedule.probes
    assert cut.probes_used == base.probes_used
    assert cut.probes_failed == base.probes_failed
    assert cut.retries_used == base.retries_used
    assert cut.pool.num_satisfied == base.pool.num_satisfied
    assert cut.pool.num_failed == base.pool.num_failed
    assert cut.believed_completeness == base.believed_completeness
    assert cut.fault_stats == base.fault_stats
    assert cut.dropped_captures == base.dropped_captures
    if base.shedding_stats is not None or cut.shedding_stats is not None:
        assert cut.shedding_stats.as_dict() == base.shedding_stats.as_dict()
    for chronon in range(NUM_CHRONONS):
        assert cut.budget_consumed_at(chronon) == base.budget_consumed_at(chronon)
    return base, cut


class TestShardedEquivalence:
    """The shared-memory sharded engine must be bit-identical.

    Per-shard budget-aware top-k streams merge in the coordinator; the
    merge-release rule (release a pending key only once it is below
    every live shard bound) must reproduce the single-engine selection
    order exactly — across policies, execution modes, M-EDF aggregate
    updates, faults, shedding, heterogeneous costs and forced widening.
    Shard count 1 pins the degenerate partition; 7 does not divide the
    resource count, so shards see unequal loads.
    """

    @pytest.mark.parametrize("policy_name", PAPER_POLICIES + WEIGHTED_POLICIES)
    @pytest.mark.parametrize("preemptive", [True, False])
    def test_schedules_identical(self, policy_name, preemptive):
        for shards in SHARD_COUNTS:
            assert_sharded_agrees(
                policy_name, _profiles(41), shards, preemptive=preemptive
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_faults_and_retries(self, shards):
        base, _ = assert_sharded_agrees(
            "M-EDF",
            _profiles(42),
            shards,
            faults=FailureModel(rate=0.4, seed=23, partial_rate=0.3),
            retry=RetryPolicy(max_retries=2),
        )
        assert base.probes_failed > 0 and base.retries_used > 0

    @pytest.mark.parametrize("shards", [2, 4])
    def test_shedding(self, shards):
        base, _ = assert_sharded_agrees(
            "MRSF",
            _profiles(43, num_ceis=80),
            shards,
            budget=1.0,
            shedding=SheddingConfig(
                overload_on=1.2, overload_off=1.0, sustain=2, target_ratio=1.0
            ),
        )
        assert base.shedding_stats.shed_ceis > 0

    @pytest.mark.parametrize("shards", [2, 7])
    def test_heterogeneous_costs(self, shards):
        pool = ResourcePool(
            [Resource(rid=i, name=f"r{i}", probe_cost=1.0 + (i % 3))
             for i in range(8)]
        )
        assert_sharded_agrees(
            "S-EDF", _profiles(44), shards, budget=3.0, resources=pool
        )

    def test_tiny_cuts_force_widening(self):
        """A capture-heavy bag drains the merged stream mid-phase.

        Higher shard counts need fewer widenings (each shard's cut
        covers more of its smaller bag), so the exercised-path assertion
        is on the total across shard counts, not per count.
        """
        profiles = _profiles(45, num_ceis=200, num_resources=6, max_width=6)
        widenings = 0
        with topk_knobs(overflow=0, growth=2):
            for shards in (2, 4):
                _, cut = assert_sharded_agrees(
                    "MRSF", profiles, shards, budget=4.0
                )
                widenings += cut.sharding_stats.widenings
        assert widenings > 0

    def test_topk_disabled_equals_enabled(self):
        profiles = _profiles(46)
        with topk_knobs(enabled=True):
            topk = _run_arena("M-EDF", profiles, shards=4)
        with topk_knobs(enabled=False):
            full = _run_arena("M-EDF", profiles, shards=4)
        assert topk.schedule.probes == full.schedule.probes


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    policy_name=st.sampled_from(PAPER_POLICIES),
    shards=st.sampled_from([2, 3, 5]),
    preemptive=st.booleans(),
)
def test_property_sharded_agrees(seed, policy_name, shards, preemptive):
    """Property form: any partition, the merged walk stays bit-identical."""
    assert_sharded_agrees(
        policy_name,
        _profiles(seed, num_ceis=25),
        shards,
        budget=1.5,
        preemptive=preemptive,
    )
