"""The fault-injection subsystem: model, injector, and monitor semantics.

Covers the FailureModel verdict oracle (determinism, precedence,
coupled draws), the RetryPolicy/FaultInjector state machine (retries,
exhaustion, exponential backoff), and the monitor-level contract: a
failed probe consumes its budget but captures nothing, pushes never
fail, and the failure counters surface through SimulationResult and
run_suite aggregation.
"""

import math

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.profile import ProfileSet
from repro.core.resource import Resource, ResourcePool
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.arrivals import arrivals_from_profiles
from repro.online.config import MonitorConfig
from repro.online.faults import (
    FailureModel,
    FaultInjector,
    Outage,
    RetryPolicy,
)
from repro.online.monitor import OnlineMonitor
from repro.policies import SEDF
from repro.sim.engine import simulate
from repro.sim.runner import run_suite
from tests.conftest import make_cei, random_general_instance


class TestValidation:
    def test_rate_out_of_range(self):
        with pytest.raises(ModelError, match="rate"):
            FailureModel(rate=1.5)
        with pytest.raises(ModelError, match="rate"):
            FailureModel(rate=-0.1)

    def test_negative_seed(self):
        with pytest.raises(ModelError, match="seed"):
            FailureModel(seed=-1)

    def test_per_resource_out_of_range(self):
        with pytest.raises(ModelError, match="per-resource"):
            FailureModel(per_resource={3: 2.0})

    def test_negative_script_count(self):
        with pytest.raises(ModelError, match="scripted"):
            FailureModel(script={(0, 0): -1})

    def test_outage_window_order(self):
        with pytest.raises(ModelError, match="outage"):
            Outage(resource=0, start=5, finish=2)

    def test_retry_policy_bounds(self):
        with pytest.raises(ModelError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ModelError, match="backoff_base"):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ModelError, match="backoff_cap"):
            RetryPolicy(backoff_cap=0)

    def test_resource_reliability_bounds(self):
        with pytest.raises(ModelError, match="reliability"):
            Resource(rid=0, name="r0", reliability=1.5)

    def test_retry_without_faults_rejected(self):
        # MonitorConfig itself allows retry-without-faults (sweep templates
        # hold a retry policy while faults vary per point); the monitor is
        # where the combination is rejected.
        with pytest.raises(ModelError, match="retry"):
            OnlineMonitor(
                SEDF(),
                BudgetVector.constant(1, 5),
                config=MonitorConfig(retry=RetryPolicy(max_retries=1)),
            )


class TestFailureModel:
    def test_verdicts_are_pure_functions(self):
        """Same (seed, resource, chronon, attempt) -> same verdict, always."""
        a = FailureModel(rate=0.5, seed=11)
        b = FailureModel(rate=0.5, seed=11)
        coords = [(r, t, k) for r in range(5) for t in range(10) for k in range(2)]
        assert [a.fails(*c) for c in coords] == [b.fails(*c) for c in coords]

    def test_different_seeds_differ(self):
        a = FailureModel(rate=0.5, seed=1)
        b = FailureModel(rate=0.5, seed=2)
        coords = [(r, t, 0) for r in range(10) for t in range(20)]
        assert [a.fails(*c) for c in coords] != [b.fails(*c) for c in coords]

    def test_rate_zero_never_fails_rate_one_always(self):
        never = FailureModel(rate=0.0, seed=3)
        always = FailureModel(rate=1.0, seed=3)
        for r in range(5):
            for t in range(5):
                assert not never.fails(r, t, 0)
                assert always.fails(r, t, 0)

    def test_coupled_draws_are_monotone_in_the_rate(self):
        """The failing set at a lower rate is a subset of a higher rate's."""
        low = FailureModel(rate=0.2, seed=7)
        high = FailureModel(rate=0.6, seed=7)
        for r in range(8):
            for t in range(30):
                if low.fails(r, t, 0):
                    assert high.fails(r, t, 0)

    def test_per_resource_overrides_base_rate(self):
        model = FailureModel(rate=0.0, per_resource={2: 1.0}, seed=0)
        assert model.failure_rate(2) == 1.0
        assert model.failure_rate(1) == 0.0
        assert model.fails(2, 0, 0)
        assert not model.fails(1, 0, 0)

    def test_outage_beats_everything(self):
        model = FailureModel(
            rate=0.0, outages=(Outage(resource=1, start=3, finish=5),), seed=0
        )
        assert not model.fails(1, 2, 0)
        assert model.fails(1, 3, 0) and model.fails(1, 5, 99)
        assert not model.fails(1, 6, 0)
        assert not model.fails(0, 4, 0)

    def test_script_mapping_fails_first_k_attempts(self):
        model = FailureModel(script={(0, 4): 2}, seed=0)
        assert model.fails(0, 4, 0)
        assert model.fails(0, 4, 1)
        assert not model.fails(0, 4, 2)
        assert not model.fails(0, 5, 0)  # unscripted pair, rate 0

    def test_script_pairs_shorthand_fails_all_attempts(self):
        model = FailureModel(script=[(0, 4), (1, 7)])
        assert model.script[(0, 4)] == math.inf
        assert model.fails(0, 4, 1000)
        assert model.fails(1, 7, 0)

    def test_script_zero_forces_success_despite_rate(self):
        model = FailureModel(rate=1.0, script={(0, 0): 0}, seed=0)
        assert not model.fails(0, 0, 0)
        assert model.fails(0, 1, 0)

    def test_from_pool_reliability(self):
        pool = ResourcePool(
            [
                Resource(rid=0, name="r0", reliability=1.0),
                Resource(rid=1, name="r1", reliability=0.25),
            ]
        )
        model = FailureModel.from_pool(pool)
        assert model.per_resource == {1: 0.75}
        assert model.failure_rate(0) == 0.0

    def test_is_trivial(self):
        assert FailureModel().is_trivial
        assert FailureModel(per_resource={0: 0.0}).is_trivial
        assert not FailureModel(rate=0.1).is_trivial
        assert not FailureModel(script=[(0, 0)]).is_trivial
        assert not FailureModel(outages=(Outage(0, 0, 0),)).is_trivial


class TestRetryPolicyAndInjector:
    def test_max_attempts(self):
        assert RetryPolicy().max_attempts == 1
        assert RetryPolicy(max_retries=3).max_attempts == 4

    def test_backoff_span_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=5)
        assert [policy.backoff_span(k) for k in (1, 2, 3, 4)] == [1, 2, 4, 5]
        assert RetryPolicy().backoff_span(3) == 0  # disabled by default

    def test_attempt_counting_and_exhaustion(self):
        injector = FaultInjector(FailureModel(rate=1.0), RetryPolicy(max_retries=1))
        injector.begin_chronon(0)
        assert injector.available(0, 0)
        assert not injector.attempt(0, 0)
        assert injector.can_retry(0)
        assert not injector.attempt(0, 0)
        assert injector.exhausted(0) and not injector.available(0, 0)
        injector.begin_chronon(1)  # fresh attempts next chronon
        assert injector.available(0, 1)
        assert injector.stats.attempts == 2
        assert injector.stats.failures == 2
        assert injector.stats.retries == 1

    def test_backoff_opens_and_success_resets_streak(self):
        model = FailureModel(script={(0, 0): math.inf, (0, 3): 0, (0, 4): math.inf})
        injector = FaultInjector(model, RetryPolicy(backoff_base=1.0))
        injector.begin_chronon(0)
        assert not injector.attempt(0, 0)  # streak 1 -> blocked for 1 chronon
        assert injector.blocked(0, 1)
        assert not injector.blocked(0, 2)
        injector.begin_chronon(3)
        assert injector.attempt(0, 3)  # success resets the streak
        injector.begin_chronon(4)
        assert not injector.attempt(0, 4)  # streak back to 1, not 2
        assert injector.blocked(0, 5) and not injector.blocked(0, 6)
        assert injector.stats.backoffs == 2

    def test_stats_successes(self):
        injector = FaultInjector(FailureModel(rate=0.0))
        injector.begin_chronon(0)
        injector.attempt(0, 0)
        injector.attempt(1, 0)
        assert injector.stats.successes == 2
        assert injector.stats.as_dict() == {
            "attempts": 2, "failures": 0, "retries": 0, "backoffs": 0,
        }


def _monitor(
    ceis, budget=1.0, chronons=10, faults=None, retry=None, resources=None
) -> OnlineMonitor:
    profiles = ProfileSet.from_ceis(ceis)
    monitor = OnlineMonitor(
        SEDF(),
        BudgetVector.constant(budget, chronons),
        resources=resources,
        config=MonitorConfig(faults=faults, retry=retry),
    )
    monitor.run(Epoch(chronons), arrivals_from_profiles(profiles))
    return monitor


class TestMonitorSemantics:
    def test_failed_probe_consumes_budget_but_captures_nothing(self):
        monitor = _monitor(
            [make_cei((0, 0, 4))], faults=FailureModel(rate=1.0, seed=0)
        )
        assert monitor.probes_used > 0
        assert monitor.probes_failed == monitor.probes_used
        assert monitor.probes_succeeded == 0
        assert monitor.schedule.num_probes == 0  # schedule = data retrieved
        assert monitor.pool.num_satisfied == 0
        assert monitor.budget_consumed_at(0) == 1.0

    def test_retry_succeeds_on_second_attempt(self):
        # First attempt at (0, 0) is scripted to fail; the retry succeeds
        # and both attempts are charged.
        monitor = _monitor(
            [make_cei((0, 0, 0))],
            budget=2.0,
            faults=FailureModel(script={(0, 0): 1}),
            retry=RetryPolicy(max_retries=1),
        )
        assert monitor.pool.num_satisfied == 1
        assert monitor.probes_used == 2
        assert monitor.probes_failed == 1
        assert monitor.retries_used == 1
        assert monitor.budget_consumed_at(0) == 2.0

    def test_no_retry_budget_left_for_other_work(self):
        # Without retries the failed attempt's leftover budget funds the
        # other resource in the same chronon.
        monitor = _monitor(
            [make_cei((0, 0, 0)), make_cei((1, 0, 0))],
            budget=2.0,
            faults=FailureModel(script=[(0, 0)]),
        )
        assert monitor.pool.num_satisfied == 1
        assert monitor.schedule.probes_at(0) == {1}

    def test_backoff_blocks_probing_across_chronons(self):
        # Resource 0 hard-fails at chronon 0; backoff_base=2 blocks
        # chronons 1-2, so the next attempt lands at chronon 3.
        monitor = _monitor(
            [make_cei((0, 0, 9))],
            faults=FailureModel(script={(0, 0): math.inf}),
            retry=RetryPolicy(backoff_base=2.0),
        )
        assert monitor.budget_consumed_at(1) == 0.0
        assert monitor.budget_consumed_at(2) == 0.0
        assert monitor.schedule.is_probed(0, 3)
        assert monitor.fault_stats.backoffs == 1

    def test_pushes_never_fail(self):
        pool = ResourcePool(
            [Resource(rid=0, name="r0", push_enabled=True)]
        )
        monitor = _monitor(
            [make_cei((0, 0, 4))],
            resources=pool,
            faults=FailureModel(rate=1.0, seed=0),
        )
        assert monitor.pool.num_satisfied == 1
        assert monitor.schedule.num_probes > 0
        # With every pull attempt failing, all schedule entries are pushes.
        scheduled = {(rid, t) for rid, t in monitor.schedule.pairs()}
        assert scheduled <= monitor.push_probes
        assert monitor.probes_succeeded == 0

    def test_fault_stats_zeroed_without_model(self):
        monitor = _monitor([make_cei((0, 0, 4))])
        assert monitor.probes_failed == 0
        assert monitor.retries_used == 0
        assert monitor.fault_stats.attempts == 0

    def test_trivial_model_changes_nothing(self):
        ceis = lambda: [make_cei((r, 0, 6)) for r in range(4)]  # noqa: E731
        plain = _monitor(ceis(), budget=2.0)
        faulty = _monitor(ceis(), budget=2.0, faults=FailureModel(rate=0.0, seed=5))
        assert faulty.schedule.probes == plain.schedule.probes
        assert faulty.probes_failed == 0


class TestSimulationPlumbing:
    @staticmethod
    def _profiles(seed=0):
        rng = np.random.default_rng(seed)
        return random_general_instance(
            rng, num_resources=6, num_chronons=20, num_ceis=25, max_rank=3, max_width=4
        )

    def test_simulation_result_counters(self):
        epoch, budget = Epoch(20), BudgetVector.constant(2.0, 20)
        result = simulate(
            self._profiles(), epoch, budget, "MRSF",
            config=MonitorConfig(
                faults=FailureModel(rate=0.5, seed=1),
                retry=RetryPolicy(max_retries=1),
            ),
        )
        assert result.probes_failed > 0
        assert result.retries_used > 0
        assert result.probes_succeeded == result.probes_used - result.probes_failed

    def test_run_suite_aggregates_failures(self):
        epoch, budget = Epoch(20), BudgetVector.constant(2.0, 20)
        aggregates = run_suite(
            lambda rng: random_general_instance(
                rng, num_resources=6, num_chronons=20, num_ceis=25,
                max_rank=3, max_width=4,
            ),
            epoch,
            budget,
            [("MRSF", True)],
            repetitions=3,
            config=MonitorConfig(
                faults=FailureModel(rate=0.5, seed=1),
                retry=RetryPolicy(max_retries=1),
            ),
        )
        cell = aggregates["MRSF(P)"]
        assert cell.probes_failed_mean > 0
        assert cell.retries_mean > 0

    def test_completeness_degrades_between_endpoints(self):
        """rate=0 vs rate=1: the failure model can only hurt completeness."""
        epoch, budget = Epoch(20), BudgetVector.constant(2.0, 20)
        profiles = self._profiles(3)
        clean = simulate(profiles, epoch, budget, "MRSF")
        dead = simulate(
            profiles, epoch, budget, "MRSF",
            config=MonitorConfig(faults=FailureModel(rate=1.0)),
        )
        assert clean.completeness > 0
        assert dead.completeness == 0.0
