"""Unit and property tests for 2-stage profile generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import WorkloadError
from repro.core.timebase import Epoch
from repro.traces.noise import perfect_predictions
from repro.traces.poisson import poisson_trace
from repro.workloads.generator import (
    GeneratorSpec,
    assign_random_weights,
    generate_profiles,
)
from repro.workloads.templates import LengthRule


def make_predictions(rng, num_resources=30, num_chronons=200, lam=8.0):
    trace = poisson_trace(num_resources, Epoch(num_chronons), lam, rng)
    return perfect_predictions(trace)


class TestSpecValidation:
    def test_positive_profiles(self):
        with pytest.raises(WorkloadError):
            GeneratorSpec(num_profiles=0, rank_max=3)

    def test_positive_rank(self):
        with pytest.raises(WorkloadError):
            GeneratorSpec(num_profiles=1, rank_max=0)

    def test_fixed_rank_bounds(self):
        with pytest.raises(WorkloadError):
            GeneratorSpec(num_profiles=1, rank_max=3, fixed_rank=4)

    def test_negative_exponents(self):
        with pytest.raises(WorkloadError):
            GeneratorSpec(num_profiles=1, rank_max=3, alpha=-0.1)


class TestGeneration:
    def test_profile_count(self, rng):
        predictions = make_predictions(rng)
        profiles = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=7, rank_max=3),
            LengthRule.window(5), rng,
        )
        assert len(profiles) == 7

    def test_fixed_rank_applies_to_every_cei(self, rng):
        predictions = make_predictions(rng)
        profiles = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=5, rank_max=4, fixed_rank=3),
            LengthRule.window(5), rng,
        )
        assert all(cei.rank == 3 for cei in profiles.ceis())

    def test_rank_bounded_by_rank_max(self, rng):
        predictions = make_predictions(rng)
        profiles = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=20, rank_max=4),
            LengthRule.window(5), rng,
        )
        assert 1 <= profiles.rank <= 4

    def test_distinct_resources_within_cei(self, rng):
        predictions = make_predictions(rng)
        profiles = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=10, rank_max=4, distinct_resources=True),
            LengthRule.window(5), rng,
        )
        for cei in profiles.ceis():
            resources = [ei.resource for ei in cei.eis]
            assert len(resources) == len(set(resources))

    def test_max_ceis_per_profile(self, rng):
        predictions = make_predictions(rng)
        profiles = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=5, rank_max=2, max_ceis_per_profile=3),
            LengthRule.window(5), rng,
        )
        assert all(len(p) <= 3 for p in profiles)

    def test_beta_skews_toward_low_ranks(self):
        rng_a = np.random.default_rng(42)
        predictions = make_predictions(rng_a, num_resources=50)
        uniform = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=200, rank_max=5, beta=0.0),
            LengthRule.window(5), np.random.default_rng(1),
        )
        skewed = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=200, rank_max=5, beta=2.0),
            LengthRule.window(5), np.random.default_rng(1),
        )
        mean_rank = lambda ps: np.mean([p.rank for p in ps])  # noqa: E731
        assert mean_rank(skewed) < mean_rank(uniform)

    def test_no_events_rejected(self, rng):
        with pytest.raises(WorkloadError):
            generate_profiles(
                {0: []}, Epoch(10),
                GeneratorSpec(num_profiles=1, rank_max=1),
                LengthRule.window(0), rng,
            )

    def test_resources_without_events_never_chosen(self, rng):
        predictions = make_predictions(rng, num_resources=5)
        predictions[99] = []
        profiles = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=10, rank_max=3),
            LengthRule.window(5), rng,
        )
        assert 99 not in profiles.resources_used


class TestExclusiveResources:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_exclusive_assignment_has_no_cross_profile_sharing(self, seed):
        rng = np.random.default_rng(seed)
        predictions = make_predictions(rng, num_resources=40)
        profiles = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(
                num_profiles=8, rank_max=3, exclusive_resources=True,
            ),
            LengthRule.window(0), rng,
        )
        seen: set[int] = set()
        for profile in profiles:
            mine = set()
            for cei in profile:
                mine |= {ei.resource for ei in cei.eis}
            assert not (mine & seen)
            seen |= mine

    def test_exclusive_with_unit_windows_has_no_intra_resource_overlap(self):
        rng = np.random.default_rng(3)
        predictions = make_predictions(rng, num_resources=40)
        profiles = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=8, rank_max=3, exclusive_resources=True),
            LengthRule.window(0), rng,
        )
        assert not profiles.has_intra_resource_overlap()

    def test_exhausting_resources_raises(self):
        rng = np.random.default_rng(4)
        predictions = make_predictions(rng, num_resources=4)
        with pytest.raises(WorkloadError):
            generate_profiles(
                predictions, Epoch(200),
                GeneratorSpec(
                    num_profiles=3, rank_max=2, fixed_rank=2,
                    exclusive_resources=True,
                ),
                LengthRule.window(0), rng,
            )


class TestWeights:
    def test_assign_random_weights_in_range(self, rng):
        predictions = make_predictions(rng)
        base = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=5, rank_max=3),
            LengthRule.window(5), rng,
        )
        weighted = assign_random_weights(base, rng, low=0.5, high=2.0)
        assert all(0.5 <= cei.weight <= 2.0 for cei in weighted.ceis())

    def test_original_untouched(self, rng):
        predictions = make_predictions(rng)
        base = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=3, rank_max=2),
            LengthRule.window(5), rng,
        )
        assign_random_weights(base, rng)
        assert all(cei.weight == 1.0 for cei in base.ceis())

    def test_structure_preserved(self, rng):
        predictions = make_predictions(rng)
        base = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=3, rank_max=2),
            LengthRule.window(5), rng,
        )
        weighted = assign_random_weights(base, rng)
        assert weighted.num_ceis == base.num_ceis
        assert weighted.num_eis == base.num_eis

    def test_bad_range_rejected(self, rng):
        predictions = make_predictions(rng)
        base = generate_profiles(
            predictions, Epoch(200),
            GeneratorSpec(num_profiles=2, rank_max=2),
            LengthRule.window(5), rng,
        )
        with pytest.raises(WorkloadError):
            assign_random_weights(base, rng, low=2.0, high=1.0)
