"""Unit and property tests for the greedy offline packer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import gained_completeness
from repro.core.profile import ProfileSet
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.offline.enumeration import solve_exact
from repro.offline.greedy import greedy_offline_schedule
from tests.conftest import make_cei, random_general_instance


class TestGreedy:
    def test_trivial_instance(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 3))])
        result = greedy_offline_schedule(
            profiles, Epoch(5), BudgetVector.constant(1, 5)
        )
        assert result.completeness == 1.0

    def test_committed_ceis_really_captured(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 2), (1, 4, 6)), make_cei((1, 0, 2)), make_cei((0, 4, 6))]
        )
        result = greedy_offline_schedule(
            profiles, Epoch(8), BudgetVector.constant(1, 8)
        )
        assert gained_completeness(profiles, result.schedule) >= result.completeness

    def test_cheap_ceis_preferred(self):
        # One wide rank-1 and one point CEI colliding: both fit here, but
        # the cheaper (point) CEI is packed first.
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 9)), make_cei((1, 0, 0))]
        )
        result = greedy_offline_schedule(
            profiles, Epoch(10), BudgetVector.constant(1, 10)
        )
        assert result.committed == 2
        assert result.schedule.is_probed(1, 0)

    def test_probe_sharing_exploited(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 2, 4)), make_cei((0, 3, 6))]
        )
        result = greedy_offline_schedule(
            profiles, Epoch(8), BudgetVector.constant(1, 8)
        )
        assert result.committed == 2
        # Probe sharing may or may not collapse to one probe depending on
        # placement order, but the budget is never exceeded.
        result.schedule.check_feasible(BudgetVector.constant(1, 8))

    def test_infeasible_cei_skipped(self):
        # Rank-2 CEI needing two resources at the same chronon with C=1.
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 3, 3), (1, 3, 3)), make_cei((2, 3, 3))]
        )
        result = greedy_offline_schedule(
            profiles, Epoch(5), BudgetVector.constant(1, 5)
        )
        assert result.committed == 1

    def test_empty_instance(self):
        result = greedy_offline_schedule(
            ProfileSet(), Epoch(5), BudgetVector.constant(1, 5)
        )
        assert result.completeness == 1.0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000), c=st.integers(1, 2))
    def test_always_feasible_and_scoring_consistent(self, seed, c):
        rng = np.random.default_rng(seed)
        profiles = random_general_instance(rng, num_ceis=10)
        budget = BudgetVector.constant(c, 25)
        result = greedy_offline_schedule(profiles, Epoch(25), budget)
        result.schedule.check_feasible(budget)
        assert gained_completeness(profiles, result.schedule) >= result.completeness

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_never_beats_exact_optimum(self, seed):
        rng = np.random.default_rng(seed)
        profiles = random_general_instance(
            rng, num_resources=3, num_chronons=8, num_ceis=4, max_rank=2,
            max_width=2,
        )
        epoch = Epoch(8)
        budget = BudgetVector.constant(1, 8)
        exact = solve_exact(profiles, epoch, budget, max_nodes=1_000_000)
        greedy = greedy_offline_schedule(profiles, epoch, budget)
        achieved = gained_completeness(profiles, greedy.schedule)
        assert achieved <= exact.completeness + 1e-9
