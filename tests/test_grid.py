"""Tests for the factorial grid runner and pivot helpers."""

import pytest

from repro.core.errors import ExperimentError
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.sim.grid import GridRunner, grid_to_csv, pivot
from repro.traces.noise import perfect_predictions
from repro.traces.poisson import poisson_trace
from repro.workloads.generator import GeneratorSpec, generate_profiles
from repro.workloads.templates import LengthRule

EPOCH = Epoch(120)


def build(params, rng):
    trace = poisson_trace(30, EPOCH, float(params["lam"]), rng)
    return generate_profiles(
        perfect_predictions(trace), EPOCH,
        GeneratorSpec(num_profiles=int(params["m"]), rank_max=2),
        LengthRule.window(4), rng,
    )


def make_grid(policies=(("MRSF", True), ("S-EDF", False))):
    return GridRunner(
        build=build,
        epoch_for=lambda params: EPOCH,
        budget_for=lambda params: BudgetVector.constant(1, len(EPOCH)),
        policies=list(policies),
    )


class TestGridRunner:
    def test_record_count(self):
        records = make_grid().run({"lam": [4, 8], "m": [5, 10]}, repetitions=2)
        assert len(records) == 2 * 2 * 2  # cells x policies

    def test_records_carry_axes_and_metrics(self):
        records = make_grid().run({"lam": [4], "m": [5]}, repetitions=1)
        record = records[0]
        assert record["lam"] == 4 and record["m"] == 5
        assert record["policy"] in {"MRSF(P)", "S-EDF(NP)"}
        assert 0.0 <= record["completeness"] <= 1.0
        assert record["num_ceis"] > 0

    def test_deterministic_given_seed(self):
        def strip_timing(records):
            return [
                {k: v for k, v in r.items() if k != "msec_per_ei"}
                for r in records
            ]

        a = make_grid().run({"lam": [4], "m": [5]}, repetitions=2, seed=3)
        b = make_grid().run({"lam": [4], "m": [5]}, repetitions=2, seed=3)
        assert strip_timing(a) == strip_timing(b)

    def test_higher_lambda_harder(self):
        records = make_grid((("MRSF", True),)).run(
            {"lam": [3, 20], "m": [15]}, repetitions=2
        )
        by_lam = {r["lam"]: r["completeness"] for r in records}
        assert by_lam[3] >= by_lam[20]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            make_grid(()).run({"lam": [1]})
        with pytest.raises(ExperimentError):
            make_grid().run({})
        with pytest.raises(ExperimentError):
            make_grid().run({"lam": [1]}, repetitions=0)


class TestPivot:
    RECORDS = [
        {"lam": 1, "m": 5, "policy": "A", "completeness": 0.9},
        {"lam": 1, "m": 10, "policy": "A", "completeness": 0.8},
        {"lam": 2, "m": 5, "policy": "A", "completeness": 0.7},
        {"lam": 2, "m": 10, "policy": "A", "completeness": 0.6},
        {"lam": 1, "m": 5, "policy": "B", "completeness": 0.5},
    ]

    def test_pivot_matrix(self):
        rows, columns, matrix = pivot(
            self.RECORDS, row="lam", column="m", value="completeness",
            where={"policy": "A"},
        )
        assert rows == [1, 2]
        assert columns == [5, 10]
        assert matrix == [[0.9, 0.8], [0.7, 0.6]]

    def test_missing_cells_are_none(self):
        rows, columns, matrix = pivot(
            self.RECORDS, row="lam", column="m", value="completeness",
            where={"policy": "B"},
        )
        assert matrix == [[0.5]]

    def test_ambiguous_pivot_raises(self):
        with pytest.raises(ExperimentError, match="ambiguous"):
            pivot(self.RECORDS, row="lam", column="m", value="completeness")


class TestCsv:
    def test_csv_shape(self):
        csv = grid_to_csv(self.records())
        lines = csv.strip().splitlines()
        assert lines[0].startswith("lam,m,policy")
        assert len(lines) == 3

    def test_empty(self):
        assert grid_to_csv([]) == ""

    @staticmethod
    def records():
        return [
            {"lam": 1, "m": 5, "policy": "A", "completeness": 0.9},
            {"lam": 2, "m": 5, "policy": "A", "completeness": 0.7},
        ]
