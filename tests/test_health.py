"""Online health estimation, circuit breaking and SLO-aware degradation.

Covers the :class:`HealthEstimator` edge cases the issue calls out
(zero-observation prior, all-failures posterior, EWMA decay across
observation gaps, circuit re-close after exactly one successful
probation probe), the :class:`CircuitBreaker` state machine (streak and
posterior triggers, cooldown escalation, short-circuit accounting), the
:class:`HealthTracker`'s frozen per-chronon snapshots, the learned
expected-gain policies (``LEG-*``) and the utility-exponent SLO
wrappers, partial-failure weighting and partial-drop retry, and the
monitor-level plumbing (config validation, stats surfacing).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.profile import ProfileSet
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online import (
    BreakerState,
    CircuitBreaker,
    FailureModel,
    HealthConfig,
    HealthEstimator,
    HealthStats,
    HealthTracker,
    MonitorConfig,
    OnlineMonitor,
    RetryPolicy,
)
from repro.online.arrivals import arrivals_from_profiles
from repro.policies import SLOExpectedGainPolicy, make_policy
from repro.sim.engine import simulate
from tests.conftest import make_cei, make_ei, unit_budget


class TestHealthConfigValidation:
    def test_defaults_valid(self):
        cfg = HealthConfig()
        assert cfg.estimator == "beta"
        assert cfg.prior_mean == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"estimator": "kalman"},
            {"prior_alpha": 0.0},
            {"prior_beta": -1.0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"decay": 0.0},
            {"decay": 1.2},
            {"breaker_failures": -1},
            {"breaker_threshold": 0.0},
            {"breaker_min_observations": -0.5},
            {"cooldown": 0},
            {"cooldown_factor": 0.5},
            {"cooldown_cap": 0},
            {"probation_probes": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ModelError):
            HealthConfig(**kwargs)

    def test_frozen(self):
        cfg = HealthConfig()
        with pytest.raises(AttributeError):
            cfg.decay = 0.5


class TestHealthEstimator:
    def test_zero_observations_estimate_at_prior(self):
        est = HealthEstimator(HealthConfig(prior_alpha=2.0, prior_beta=6.0))
        assert est.estimate(7, 0) == pytest.approx(0.25)
        assert est.estimate(7, 100) == pytest.approx(0.25)
        assert est.observed_weight(7, 0) == 0.0
        assert est.resources() == []

    def test_all_failures_posterior_approaches_one_from_below(self):
        est = HealthEstimator(HealthConfig())
        for chronon in range(50):
            est.observe(3, chronon, 1.0)
        # Beta(1+50, 1+0) mean = 51/52 — high, but strictly below 1, so a
        # learned p_success never collapses to exactly 0.
        assert est.estimate(3, 50) == pytest.approx(51 / 52)
        assert est.estimate(3, 50) < 1.0

    def test_all_successes_posterior_approaches_zero_from_above(self):
        est = HealthEstimator(HealthConfig())
        for chronon in range(30):
            est.observe(3, chronon, 0.0)
        assert est.estimate(3, 30) == pytest.approx(1 / 32)
        assert est.estimate(3, 30) > 0.0

    def test_partial_weight_sits_between(self):
        est = HealthEstimator(HealthConfig())
        est.observe(0, 0, 0.25)
        # Beta counts: fail 0.25, succ 0.75 -> (1 + 0.25) / (2 + 1).
        assert est.estimate(0, 1) == pytest.approx(1.25 / 3)

    def test_beta_decay_forgets_across_gap(self):
        cfg = HealthConfig(decay=0.5)
        est = HealthEstimator(cfg)
        for chronon in range(3):
            est.observe(0, chronon, 1.0)
        fresh = est.estimate(0, 2)
        # Ten idle chronons decay the pseudo-counts by 0.5**10, pulling
        # the posterior most of the way back to the prior mean.
        stale = est.estimate(0, 12)
        assert fresh > 0.7
        assert abs(stale - cfg.prior_mean) < abs(fresh - cfg.prior_mean)

    def test_ewma_relaxes_toward_prior_across_gaps(self):
        cfg = HealthConfig(estimator="ewma", ewma_alpha=0.5, decay=0.5)
        est = HealthEstimator(cfg)
        est.observe(0, 0, 1.0)
        at_once = est.estimate(0, 0)
        assert at_once > cfg.prior_mean
        later = est.estimate(0, 8)
        assert cfg.prior_mean < later < at_once
        # And the relaxed mean is what the next observation starts from:
        # a failure at chronon 8 moves the estimate from the *relaxed*
        # mean, not the stale one.
        est.observe(0, 8, 1.0)
        assert est.estimate(0, 8) == pytest.approx(later + 0.5 * (1.0 - later))

    def test_ewma_without_decay_ignores_gaps(self):
        cfg = HealthConfig(estimator="ewma", ewma_alpha=0.5)
        est = HealthEstimator(cfg)
        est.observe(0, 0, 1.0)
        assert est.estimate(0, 0) == est.estimate(0, 1000)

    def test_dirty_tracking_resets_on_pop(self):
        est = HealthEstimator(HealthConfig())
        est.observe(4, 0, 1.0)
        est.observe(9, 0, 0.0)
        assert est.pop_dirty() == {4, 9}
        assert est.pop_dirty() == set()


def _breaker(**kwargs) -> CircuitBreaker:
    config = HealthConfig(breaker=True, **kwargs)
    return CircuitBreaker(config, HealthStats())


class TestCircuitBreaker:
    def test_streak_trips_open(self):
        breaker = _breaker(breaker_failures=3, cooldown=4)
        for chronon in range(2):
            breaker.on_failure(0, chronon, 0.9, 10.0)
        assert breaker.state(0) is BreakerState.CLOSED
        breaker.on_failure(0, 2, 0.9, 10.0)
        assert breaker.state(0) is BreakerState.OPEN
        assert breaker.blocked(0)
        assert breaker.stats.opens == 1

    def test_success_resets_streak(self):
        breaker = _breaker(breaker_failures=2)
        breaker.on_failure(0, 0, 0.5, 1.0)
        breaker.on_success(0, 1)
        breaker.on_failure(0, 2, 0.5, 2.0)
        assert breaker.state(0) is BreakerState.CLOSED

    def test_posterior_threshold_needs_min_observations(self):
        breaker = _breaker(
            breaker_failures=0, breaker_threshold=0.8, breaker_min_observations=5.0
        )
        breaker.on_failure(0, 0, 0.9, 3.0)  # hot estimate, thin evidence
        assert breaker.state(0) is BreakerState.CLOSED
        breaker.on_failure(0, 1, 0.9, 5.0)
        assert breaker.state(0) is BreakerState.OPEN

    def test_reclose_after_exactly_one_probation_probe(self):
        breaker = _breaker(breaker_failures=1, cooldown=2, probation_probes=1)
        breaker.on_failure(0, 0, 0.9, 1.0)
        assert breaker.state(0) is BreakerState.OPEN
        # Cooldown spans chronons 1-2; the chronon-3 promotion makes the
        # resource probeable again.
        breaker.begin_chronon(1)
        breaker.begin_chronon(2)
        assert breaker.state(0) is BreakerState.OPEN
        breaker.begin_chronon(3)
        assert breaker.state(0) is BreakerState.HALF_OPEN
        assert not breaker.blocked(0)
        breaker.on_success(0, 3)
        assert breaker.state(0) is BreakerState.CLOSED
        assert breaker.stats.closes == 1
        assert breaker.stats.probation_probes == 1

    def test_probation_failure_reopens_with_escalated_cooldown(self):
        breaker = _breaker(
            breaker_failures=1, cooldown=2, cooldown_factor=2.0, cooldown_cap=64
        )
        breaker.on_failure(0, 0, 0.9, 1.0)
        breaker.begin_chronon(3)
        assert breaker.state(0) is BreakerState.HALF_OPEN
        breaker.on_failure(0, 3, 0.9, 2.0)
        assert breaker.state(0) is BreakerState.OPEN
        assert breaker.stats.reopens == 1
        # Escalated span 4: OPEN through chronons 4-7, HALF_OPEN at 8.
        breaker.begin_chronon(7)
        assert breaker.state(0) is BreakerState.OPEN
        breaker.begin_chronon(8)
        assert breaker.state(0) is BreakerState.HALF_OPEN

    def test_cooldown_cap_bounds_escalation(self):
        breaker = _breaker(
            breaker_failures=1, cooldown=8, cooldown_factor=10.0, cooldown_cap=16
        )
        breaker.on_failure(0, 0, 0.9, 1.0)
        breaker.begin_chronon(9)
        breaker.on_failure(0, 9, 0.9, 2.0)
        assert breaker._span[0] == 16

    def test_multi_probe_probation(self):
        breaker = _breaker(breaker_failures=1, cooldown=1, probation_probes=2)
        breaker.on_failure(0, 0, 0.9, 1.0)
        breaker.begin_chronon(2)
        breaker.on_success(0, 2)
        assert breaker.state(0) is BreakerState.HALF_OPEN
        breaker.on_success(0, 3)
        assert breaker.state(0) is BreakerState.CLOSED

    def test_short_circuited_counts_open_chronons(self):
        breaker = _breaker(breaker_failures=1, cooldown=3)
        breaker.on_failure(0, 0, 0.9, 1.0)
        breaker.begin_chronon(1)
        breaker.begin_chronon(2)
        assert breaker.stats.short_circuited == 2


class TestHealthTracker:
    def test_snapshot_frozen_within_chronon(self):
        tracker = HealthTracker(HealthConfig())
        tracker.begin_chronon(0)
        before = tracker.p_failure(0)
        tracker.record_probe(0, 0, True, 1.0)
        # Mid-chronon observations must not move the served estimate.
        assert tracker.p_failure(0) == before
        tracker.begin_chronon(1)
        assert tracker.p_failure(0) > before

    def test_version_bumps_per_chronon(self):
        tracker = HealthTracker(HealthConfig())
        v0 = tracker.version
        tracker.begin_chronon(0)
        tracker.begin_chronon(1)
        assert tracker.version == v0 + 2

    def test_frozen_dirty_lists_observed_resources(self):
        tracker = HealthTracker(HealthConfig())
        tracker.begin_chronon(0)
        tracker.record_probe(5, 0, True, 1.0)
        tracker.begin_chronon(1)
        assert tracker.frozen_dirty == frozenset({5})
        tracker.begin_chronon(2)
        assert tracker.frozen_dirty == frozenset()

    def test_decayed_config_refreezes_everything(self):
        tracker = HealthTracker(HealthConfig(decay=0.9))
        tracker.begin_chronon(0)
        tracker.record_probe(1, 0, True, 1.0)
        tracker.record_probe(2, 0, False, 0.0)
        tracker.begin_chronon(1)
        assert tracker.frozen_dirty == frozenset({1, 2})
        tracker.begin_chronon(2)
        # No new observations, but decay drifts every estimate.
        assert tracker.frozen_dirty == frozenset({1, 2})

    def test_error_log_tracks_oracle_gap(self):
        model = FailureModel(per_resource={0: 0.8, 1: 0.8})
        tracker = HealthTracker(HealthConfig(track_error=True), model)
        tracker.begin_chronon(0)
        # Prior 0.5 vs true 0.8 on both resources.
        assert tracker.stats.error_log[-1] == (0, pytest.approx(0.3))
        for chronon in range(1, 40):
            tracker.record_probe(0, chronon, True, 1.0)
            tracker.record_probe(1, chronon, True, 1.0)
            tracker.begin_chronon(chronon)
        first_error = tracker.stats.error_log[0][1]
        assert tracker.stats.final_error < first_error

    def test_partial_weight_flows_into_estimate(self):
        tracker = HealthTracker(HealthConfig())
        tracker.record_probe(0, 0, False, 0.5)
        tracker.begin_chronon(1)
        assert tracker.p_failure(0) == pytest.approx(1.5 / 3)


class TestLearnedPolicies:
    def test_learned_without_tracker_matches_base(self):
        policy = make_policy("LEG-S-EDF")
        ei = make_ei(0, 0, 9)
        assert policy.source == "learned"
        assert policy.p_success(0, 0) == 1.0
        assert policy.priority(ei, 0, None) == policy.base.priority(ei, 0, None)

    def test_learned_p_success_reads_frozen_snapshot(self):
        policy = make_policy("LEG-S-EDF")
        tracker = HealthTracker(HealthConfig())
        policy.bind_health(tracker)
        retry = RetryPolicy(max_retries=1)
        policy.bind_reliability(FailureModel(rate=0.5), retry)
        for chronon in range(20):
            tracker.record_probe(0, chronon, True, 1.0)
        tracker.begin_chronon(20)
        f = tracker.p_failure(0)
        assert policy.p_success(0, 20) == pytest.approx(1.0 - f**2)
        # The oracle's rate never enters the learned path.
        assert policy.p_success(0, 20) != pytest.approx(1.0 - 0.5**2)

    def test_learned_array_matches_scalars_bitwise(self):
        policy = make_policy("LEG-MRSF")
        tracker = HealthTracker(HealthConfig())
        policy.bind_health(tracker)
        rng = np.random.default_rng(5)
        for chronon in range(30):
            rid = int(rng.integers(0, 8))
            tracker.record_probe(rid, chronon, bool(rng.integers(0, 2)), 1.0)
            tracker.begin_chronon(chronon)
            arr = policy.p_success_array(chronon, 8)
            for rid2 in range(8):
                assert arr[rid2] == policy.p_success(rid2, chronon)

    def test_invalid_source_rejected(self):
        from repro.policies import ExpectedGainPolicy

        with pytest.raises(ModelError, match="source"):
            ExpectedGainPolicy("S-EDF", source="psychic")

    def test_slo_discount_uses_cei_weight_exponent(self):
        policy = SLOExpectedGainPolicy(
            "W-S-EDF",
            faults=FailureModel(per_resource={0: 0.5}),
            retry=RetryPolicy(max_retries=1),
        )
        cei = make_cei((0, 0, 9), weight=3.0)
        ei = cei.eis[0]
        p = policy.p_success(0, 0)  # 0.75
        base = policy.base.priority(ei, 0, None)
        assert policy.priority(ei, 0, None) == pytest.approx(base / p**3.0)

    def test_slo_with_unit_weight_matches_plain_expected_gain(self):
        from repro.policies import ExpectedGainPolicy

        faults = FailureModel(per_resource={0: 0.4})
        retry = RetryPolicy(max_retries=1)
        slo = SLOExpectedGainPolicy("W-S-EDF", faults=faults, retry=retry)
        plain = ExpectedGainPolicy("W-S-EDF", faults=faults, retry=retry)
        cei = make_cei((0, 0, 9))  # weight 1.0
        ei = cei.eis[0]
        assert slo.priority(ei, 0, None) == plain.priority(ei, 0, None)

    def test_slo_certain_failure_ranks_last(self):
        policy = SLOExpectedGainPolicy(
            "W-S-EDF", faults=FailureModel(per_resource={0: 1.0})
        )
        cei = make_cei((0, 0, 9), weight=2.0)
        assert policy.priority(cei.eis[0], 0, None) == math.inf

    def test_registry_names(self):
        for name, source, prefix in [
            ("LEG-MRSF", "learned", "LEG-"),
            ("SLO-MRSF", "oracle", "SLO-"),
            ("LSLO-M-EDF", "learned", "LSLO-"),
        ]:
            policy = make_policy(name)
            assert policy.source == source
            assert policy.name.startswith(prefix)


def _run_monitor(ceis, config, budget=1.0, chronons=12, policy="LEG-S-EDF"):
    profiles = ProfileSet.from_ceis(ceis)
    epoch = Epoch(chronons)
    monitor = OnlineMonitor(
        make_policy(policy), unit_budget(epoch, budget), config=config
    )
    monitor.run(epoch, arrivals_from_profiles(profiles))
    return monitor


class TestMonitorIntegration:
    def test_health_without_faults_rejected(self):
        cfg = MonitorConfig(health=HealthConfig())
        with pytest.raises(ModelError, match="health"):
            OnlineMonitor(make_policy("S-EDF"), BudgetVector.constant(1, 5), config=cfg)

    def test_health_config_allowed_as_template(self):
        # Like retry: a sweep template may carry health without faults;
        # only the monitor rejects the combination.
        cfg = MonitorConfig(health=HealthConfig())
        assert cfg.faults is None and cfg.health is not None

    def test_monitor_without_health_has_no_stats(self):
        monitor = _run_monitor(
            [make_cei((0, 0, 4))], MonitorConfig(), policy="S-EDF"
        )
        assert monitor.health is None
        assert monitor.health_stats is None

    def test_every_probe_is_observed(self):
        cfg = MonitorConfig(faults=FailureModel(rate=0.3, seed=2), health=HealthConfig())
        monitor = _run_monitor(
            [make_cei((0, 0, 11)), make_cei((1, 0, 11))], cfg, budget=2.0
        )
        assert monitor.health_stats.observations == monitor.probes_used

    def test_breaker_blocks_dead_resource_and_recovers_budget(self):
        # Resource 0 always fails; resource 1 never does.  With the
        # breaker armed the monitor stops wasting its single probe on
        # resource 0 during cooldown, so resource 1 gains captures.
        model = FailureModel(per_resource={0: 1.0, 1: 0.0})
        ceis = [make_cei((0, 0, 19)), make_cei((1, 0, 19))]
        blind_cfg = MonitorConfig(faults=model)
        armed_cfg = MonitorConfig(
            faults=model,
            health=HealthConfig(breaker=True, breaker_failures=2, cooldown=4),
        )
        blind = _run_monitor(ceis, blind_cfg, chronons=20)
        armed = _run_monitor(ceis, armed_cfg, chronons=20)
        stats = armed.health_stats
        assert stats.opens >= 1
        assert stats.short_circuited > 0
        assert armed.pool.num_satisfied >= blind.pool.num_satisfied
        assert armed.probes_failed < blind.probes_failed

    def test_simulation_result_carries_health_stats(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 9))])
        epoch = Epoch(10)
        cfg = MonitorConfig(faults=FailureModel(rate=0.2, seed=1), health=HealthConfig())
        result = simulate(profiles, epoch, unit_budget(epoch), "LEG-S-EDF", config=cfg)
        assert result.health is not None
        assert result.health.observations == result.probes_used
        assert "observations" in result.health.as_dict()

    def test_no_health_keeps_simulation_result_none(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 9))])
        epoch = Epoch(10)
        result = simulate(profiles, epoch, unit_budget(epoch), "S-EDF")
        assert result.health is None


class TestPartialRetry:
    def _partial_cfg(self, retry_partials, engine="reference"):
        return MonitorConfig(
            engine=engine,
            faults=FailureModel(rate=0.0, partial_rate=1.0, seed=3),
            retry=RetryPolicy(max_retries=2, retry_partials=retry_partials),
            health=HealthConfig(),
        )

    def test_partial_drops_recorded_as_weighted_observations(self):
        # partial_rate=1 drops every EI of every probe: each probe is a
        # success whose entire payload vanished, observed at weight 1.
        cfg = self._partial_cfg(retry_partials=False)
        monitor = _run_monitor([make_cei((0, 0, 9))], cfg, chronons=10)
        stats = monitor.health_stats
        assert monitor.dropped_captures
        assert stats.observations == monitor.probes_used
        tracker = monitor.health
        tracker.begin_chronon(99)
        assert tracker.p_failure(0) > 0.5  # all-drops posterior

    def test_retry_partials_spends_attempts_on_dropped_eis(self):
        baseline = _run_monitor(
            [make_cei((0, 0, 9))], self._partial_cfg(False), budget=3.0, chronons=10
        )
        retrying = _run_monitor(
            [make_cei((0, 0, 9))], self._partial_cfg(True), budget=3.0, chronons=10
        )
        assert baseline.retries_used == 0
        # With every EI dropped every time, the re-probe exhausts the full
        # attempt allowance on the dropped window each chronon.
        assert retrying.retries_used > 0
        assert retrying.probes_used > baseline.probes_used

    def test_retry_partials_recovers_drops_at_moderate_rate(self):
        # At partial_rate=0.4 a re-probe usually redraws a clean verdict,
        # so the retrying run loses fewer EIs outright.
        ceis = [make_cei((rid % 3, 0, 14)) for rid in range(9)]
        faults = FailureModel(rate=0.0, partial_rate=0.4, seed=11)
        base_cfg = MonitorConfig(
            faults=faults, retry=RetryPolicy(max_retries=2, retry_partials=False)
        )
        retry_cfg = MonitorConfig(
            faults=faults, retry=RetryPolicy(max_retries=2, retry_partials=True)
        )
        baseline = _run_monitor(ceis, base_cfg, budget=3.0, chronons=15, policy="S-EDF")
        retrying = _run_monitor(ceis, retry_cfg, budget=3.0, chronons=15, policy="S-EDF")
        assert len(retrying.dropped_captures) <= len(baseline.dropped_captures)
        assert retrying.pool.num_satisfied >= baseline.pool.num_satisfied

    def test_retry_partials_field_default_off(self):
        assert RetryPolicy(max_retries=1).retry_partials is False
