"""Unit tests for the hybrid and clairvoyant policies."""

import numpy as np

from repro.core.profile import ProfileSet
from repro.core.schedule import BudgetVector, Schedule
from repro.core.timebase import Epoch
from repro.online.arrivals import arrivals_from_profiles
from repro.online.monitor import OnlineMonitor
from repro.policies import FollowSchedule, Hybrid, clairvoyant_policy, make_policy
from tests.conftest import make_cei, random_unit_instance


class FakeView:
    def __init__(self, captured=()):
        self._captured = set(captured)

    def is_ei_captured(self, ei):
        return ei.seq in self._captured

    def captured_count(self, cei):
        return sum(1 for ei in cei.eis if ei.seq in self._captured)

    def active_uncaptured_on(self, resource):
        return 0


class TestHybrid:
    def test_combines_deadline_and_residual(self):
        # Same deadline; the CEI with fewer remaining EIs wins.
        close = make_cei((0, 0, 5))
        far = make_cei((1, 0, 5), (2, 0, 9))
        policy = Hybrid()
        view = FakeView()
        assert policy.priority(close.eis[0], 0, view) < policy.priority(
            far.eis[0], 0, view
        )

    def test_deadline_dominates_for_equal_residuals(self):
        urgent = make_cei((0, 0, 1))
        relaxed = make_cei((1, 0, 9))
        policy = Hybrid()
        view = FakeView()
        assert policy.priority(urgent.eis[0], 0, view) < policy.priority(
            relaxed.eis[0], 0, view
        )

    def test_registered(self):
        assert isinstance(make_policy("HYBRID"), Hybrid)

    def test_runs_end_to_end(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 3)), make_cei((1, 1, 4), (2, 5, 8))]
        )
        monitor = OnlineMonitor(Hybrid(), BudgetVector.constant(1, 10))
        monitor.run(Epoch(10), arrivals_from_profiles(profiles))
        monitor.check_budget_feasible()
        assert monitor.pool.num_satisfied >= 1


class TestFollowSchedule:
    def test_replays_plan_exactly(self):
        plan = Schedule.from_pairs([(0, 2), (1, 5)])
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 4)), make_cei((1, 3, 7))])
        monitor = OnlineMonitor(
            FollowSchedule(plan), BudgetVector.constant(1, 10)
        )
        schedule = monitor.run(Epoch(10), arrivals_from_profiles(profiles))
        assert schedule.is_probed(0, 2)
        assert schedule.is_probed(1, 5)
        assert schedule.num_probes == 2

    def test_plan_respects_budget_limit(self):
        plan = Schedule.from_pairs([(0, 2), (1, 2), (2, 2)])
        profiles = ProfileSet.from_ceis([make_cei((r, 0, 4)) for r in range(3)])
        monitor = OnlineMonitor(
            FollowSchedule(plan), BudgetVector.constant(2, 10)
        )
        monitor.run(Epoch(10), arrivals_from_profiles(profiles))
        assert len(monitor.schedule.probes_at(2)) == 2  # clipped to C

    def test_empty_plan_probes_nothing(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 4))])
        monitor = OnlineMonitor(FollowSchedule(), BudgetVector.constant(1, 5))
        monitor.run(Epoch(5), arrivals_from_profiles(profiles))
        assert monitor.probes_used == 0


class TestClairvoyant:
    def test_matches_offline_plan_completeness(self):
        rng = np.random.default_rng(13)
        profiles = random_unit_instance(
            rng, num_resources=5, num_chronons=12, num_ceis=8, max_rank=2,
            no_overlap=True,
        )
        epoch = Epoch(14)
        budget = BudgetVector.constant(1, 14)
        policy = clairvoyant_policy(profiles, epoch, budget)
        monitor = OnlineMonitor(policy, budget)
        monitor.run(epoch, arrivals_from_profiles(profiles))
        from repro.core.metrics import gained_completeness
        from repro.offline.local_ratio import LocalRatioScheduler

        plan = LocalRatioScheduler(mode="tight").solve(profiles, epoch, budget)
        executed = gained_completeness(profiles, monitor.schedule)
        planned = gained_completeness(profiles, plan.schedule)
        assert executed >= planned - 1e-9
