"""Integration and property tests across the whole pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import evaluate_schedule, gained_completeness
from repro.core.profile import ProfileSet
from repro.core.resource import Resource, ResourcePool
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.arrivals import arrivals_from_profiles
from repro.online.monitor import OnlineMonitor
from repro.policies import available_policies, make_policy
from repro.sim.engine import simulate
from repro.traces.noise import FPNModel, perfect_predictions
from repro.traces.poisson import poisson_trace
from repro.workloads.generator import GeneratorSpec, generate_profiles
from repro.workloads.templates import (
    LengthRule,
    arbitrage_ceis,
    periodic_ceis,
)
from tests.conftest import random_general_instance


def build_workload(seed: int, **spec_kwargs) -> tuple[ProfileSet, Epoch]:
    epoch = Epoch(150)
    rng = np.random.default_rng(seed)
    trace = poisson_trace(30, epoch, 8.0, rng)
    defaults = dict(num_profiles=10, rank_max=3)
    defaults.update(spec_kwargs)
    profiles = generate_profiles(
        perfect_predictions(trace), epoch, GeneratorSpec(**defaults),
        LengthRule.window(5), rng,
    )
    return profiles, epoch


class TestEveryPolicyEndToEnd:
    @pytest.mark.parametrize("name", sorted(available_policies()))
    def test_policy_runs_and_respects_budget(self, name):
        profiles, epoch = build_workload(11)
        budget = BudgetVector.constant(1, len(epoch))
        monitor = OnlineMonitor(make_policy(name), budget)
        schedule = monitor.run(epoch, arrivals_from_profiles(profiles))
        monitor.check_budget_feasible()
        schedule.check_feasible(budget, epoch=epoch)
        report = evaluate_schedule(profiles, schedule)
        assert 0.0 <= report.completeness <= 1.0

    @pytest.mark.parametrize("name", ["S-EDF", "MRSF", "M-EDF"])
    def test_believed_matches_truth_without_noise(self, name):
        profiles, epoch = build_workload(12)
        result = simulate(
            profiles, epoch, BudgetVector.constant(1, len(epoch)), name
        )
        assert result.believed_completeness == pytest.approx(result.completeness)


class TestBudgetInvariant:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000), c=st.integers(1, 3))
    def test_no_schedule_ever_violates_budget(self, seed, c):
        rng = np.random.default_rng(seed)
        profiles = random_general_instance(rng, num_ceis=10)
        epoch = Epoch(25)
        budget = BudgetVector.constant(c, 25)
        for name in ("S-EDF", "MRSF", "M-EDF", "WIC"):
            monitor = OnlineMonitor(make_policy(name), budget)
            monitor.run(epoch, arrivals_from_profiles(profiles))
            monitor.check_budget_feasible()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_monitor_bookkeeping_matches_schedule_scoring(self, seed):
        """The pool's satisfied count must equal the schedule's score."""
        rng = np.random.default_rng(seed)
        profiles = random_general_instance(rng, num_ceis=8)
        epoch = Epoch(25)
        monitor = OnlineMonitor(make_policy("MRSF"), BudgetVector.constant(1, 25))
        schedule = monitor.run(epoch, arrivals_from_profiles(profiles))
        scored = gained_completeness(profiles, schedule)
        believed = monitor.believed_completeness
        # Without noise the proxy's belief is ground truth... except that
        # probes can capture EIs of *already-failed* CEIs (belief drops
        # them, scoring counts all probes) — belief is a lower bound.
        assert believed <= scored + 1e-9


class TestBudgetMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_more_budget_never_hurts_much(self, seed):
        """Raising C should not decrease completeness beyond noise.

        (Online policies are not formally monotone, but a collapse would
        indicate an engine bug; we allow small non-monotonicity.)"""
        rng = np.random.default_rng(seed)
        profiles = random_general_instance(rng, num_ceis=12)
        epoch = Epoch(25)
        completenesses = []
        for c in (1, 2, 4):
            result = simulate(
                profiles, epoch, BudgetVector.constant(c, 25), "MRSF"
            )
            completenesses.append(result.completeness)
        assert completenesses[-1] >= completenesses[0] - 0.10


class TestNoisePipeline:
    def test_noise_reduces_completeness(self):
        epoch = Epoch(300)
        master = np.random.default_rng(5)
        trace = poisson_trace(40, epoch, 10.0, master)
        spec = GeneratorSpec(num_profiles=15, rank_max=3)
        budget = BudgetVector.constant(1, len(epoch))

        def completeness_for(z: float) -> float:
            rng = np.random.default_rng(99)
            noise = FPNModel(z=z, max_shift=20)
            predictions = (
                perfect_predictions(trace)
                if z >= 1.0
                else noise.predict_bundle(trace, epoch, rng)
            )
            profiles = generate_profiles(
                predictions, epoch, spec, LengthRule.window(3),
                np.random.default_rng(7),
            )
            return simulate(profiles, epoch, budget, "M-EDF").completeness

        clean = completeness_for(1.0)
        noisy = completeness_for(0.2)
        assert noisy < clean

    def test_believed_exceeds_truth_under_noise(self):
        epoch = Epoch(200)
        rng = np.random.default_rng(8)
        trace = poisson_trace(30, epoch, 8.0, rng)
        noise = FPNModel(z=0.0, max_shift=25)
        predictions = noise.predict_bundle(trace, epoch, rng)
        profiles = generate_profiles(
            predictions, epoch,
            GeneratorSpec(num_profiles=10, rank_max=2),
            LengthRule.window(2), rng,
        )
        result = simulate(profiles, epoch, BudgetVector.constant(2, 200), "S-EDF")
        # The proxy believes its probes worked; truth says otherwise.
        assert result.believed_completeness >= result.completeness


class TestPaperScenarios:
    def test_example_two_news_mashup(self):
        """Paper Example 2 / Figure 4: periodic blog pulls; 'oil' posts
        trigger crossing CNN Breaking News and CNN Money."""
        epoch = Epoch(120)
        pool = ResourcePool.from_names(
            ["MishBlog", "CNNBreakingNews", "CNNMoney"]
        )
        blog = pool.by_name("MishBlog").rid
        cnn = pool.by_name("CNNBreakingNews").rid
        money = pool.by_name("CNNMoney").rid
        ceis = periodic_ceis(
            blog, epoch, period=10, slack=2,
            conditional=[cnn, money], conditional_slack=10,
            trigger_chronons={30, 70},
        )
        profiles = ProfileSet.from_ceis(ceis)
        assert profiles.rank == 3
        result = simulate(profiles, epoch, BudgetVector.constant(1, 120), "MRSF")
        # Plenty of budget relative to demand: everything is satisfied.
        assert result.completeness == 1.0

    def test_example_three_arbitrage_with_push(self):
        """Paper Example 3: the stock exchange pushes; futures and
        currency exchanges must be crossed within one chronon."""
        epoch = Epoch(60)
        pool = ResourcePool(
            [
                Resource(rid=0, name="StockExchange", push_enabled=True),
                Resource(rid=1, name="FuturesExchange"),
                Resource(rid=2, name="CurrencyExchange"),
            ]
        )
        from repro.traces.noise import PredictedEvent

        predictions = {
            0: [PredictedEvent(t, t) for t in (10, 30, 50)],
        }
        ceis = arbitrage_ceis(
            0, [1, 2], predictions, epoch, trigger_slack=0, follower_slack=1
        )
        profiles = ProfileSet.from_ceis(ceis)
        budget = BudgetVector.constant(2, 60)
        monitor = OnlineMonitor(make_policy("MRSF"), budget, resources=pool)
        schedule = monitor.run(epoch, arrivals_from_profiles(profiles))
        monitor.check_budget_feasible()
        # Pushes cover the trigger; the two pulls fit in C=2 over 2 chronons.
        assert gained_completeness(profiles, schedule) == 1.0

    def test_full_paper_baseline_configuration_runs(self):
        """Table I baseline at reduced K: the full pipeline end to end."""
        epoch = Epoch(200)
        rng = np.random.default_rng(0)
        trace = poisson_trace(200, epoch, 4.0, rng)
        profiles = generate_profiles(
            perfect_predictions(trace), epoch,
            GeneratorSpec(num_profiles=20, rank_max=5, alpha=0.3),
            LengthRule.window(10), rng,
        )
        budget = BudgetVector.constant(1, len(epoch))
        ranking = {}
        for name, preemptive in (("S-EDF", False), ("MRSF", True), ("M-EDF", True)):
            result = simulate(profiles, epoch, budget, name, preemptive=preemptive)
            ranking[result.label] = result.completeness
        assert ranking["MRSF(P)"] >= ranking["S-EDF(NP)"] - 0.05
