"""Unit tests for execution intervals and complex execution intervals."""

import pytest

from repro.core.errors import ModelError
from repro.core.intervals import (
    ComplexExecutionInterval,
    ExecutionInterval,
    Semantics,
    cei,
    intra_resource_overlap,
)
from tests.conftest import make_cei, make_ei


class TestExecutionInterval:
    def test_length_counts_chronons(self):
        assert make_ei(0, 3, 7).length == 5

    def test_unit_detection(self):
        assert make_ei(0, 4, 4).is_unit
        assert not make_ei(0, 4, 5).is_unit

    def test_true_window_defaults_to_scheduling_window(self):
        ei = make_ei(0, 3, 7)
        assert (ei.true_start, ei.true_finish) == (3, 7)

    def test_true_window_can_differ(self):
        ei = make_ei(0, 3, 7, true_start=5, true_finish=9)
        assert ei.truly_active_at(9)
        assert not ei.active_at(9)

    def test_active_at_boundaries(self):
        ei = make_ei(0, 3, 7)
        assert ei.active_at(3)
        assert ei.active_at(7)
        assert not ei.active_at(2)
        assert not ei.active_at(8)

    def test_inverted_window_rejected(self):
        with pytest.raises(ModelError):
            make_ei(0, 7, 3)

    def test_negative_resource_rejected(self):
        with pytest.raises(ModelError):
            make_ei(-1, 0, 1)

    def test_overlaps_shared_chronon(self):
        assert make_ei(0, 3, 7).overlaps(make_ei(0, 7, 9))

    def test_overlaps_disjoint(self):
        assert not make_ei(0, 3, 6).overlaps(make_ei(0, 7, 9))

    def test_chronons_range(self):
        assert list(make_ei(0, 3, 5).chronons()) == [3, 4, 5]

    def test_shifted_moves_scheduling_window_only(self):
        ei = make_ei(0, 5, 8)
        shifted = ei.shifted(3)
        assert (shifted.start, shifted.finish) == (8, 11)
        assert (shifted.true_start, shifted.true_finish) == (5, 8)

    def test_shifted_clamps_at_zero_preserving_length(self):
        shifted = make_ei(0, 2, 4).shifted(-5)
        assert (shifted.start, shifted.finish) == (0, 2)
        assert shifted.length == 3

    def test_seq_is_unique(self):
        assert make_ei(0, 0, 0).seq != make_ei(0, 0, 0).seq

    def test_hash_by_seq(self):
        ei = make_ei(0, 0, 0)
        assert hash(ei) == ei.seq


class TestComplexExecutionInterval:
    def test_rank_is_ei_count(self):
        assert make_cei((0, 1, 2), (1, 3, 4), (2, 5, 6)).rank == 3

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            ComplexExecutionInterval(eis=())

    def test_release_is_earliest_start(self):
        assert make_cei((0, 5, 9), (1, 2, 4)).release == 2

    def test_deadline_is_latest_finish(self):
        assert make_cei((0, 5, 9), (1, 2, 4)).deadline == 9

    def test_total_chronons_sums_lengths(self):
        assert make_cei((0, 0, 4), (1, 2, 3)).total_chronons == 7

    def test_is_unit(self):
        assert make_cei((0, 2, 2), (1, 3, 3)).is_unit
        assert not make_cei((0, 2, 3), (1, 3, 3)).is_unit

    def test_resources(self):
        assert make_cei((0, 0, 1), (2, 2, 3), (0, 5, 6)).resources == {0, 2}

    def test_and_semantics_requires_all(self):
        c = make_cei((0, 0, 1), (1, 0, 1))
        assert c.required == 2
        assert not c.satisfied_by_count(1)
        assert c.satisfied_by_count(2)

    def test_any_semantics_requires_one(self):
        c = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 1), make_ei(1, 0, 1)), semantics=Semantics.ANY
        )
        assert c.required == 1
        assert c.satisfied_by_count(1)

    def test_k_of_n_semantics(self):
        c = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 1), make_ei(1, 0, 1), make_ei(2, 0, 1)),
            semantics=Semantics.AT_LEAST,
            required=2,
        )
        assert not c.satisfied_by_count(1)
        assert c.satisfied_by_count(2)

    def test_k_of_n_bounds_validated(self):
        with pytest.raises(ModelError):
            ComplexExecutionInterval(
                eis=(make_ei(0, 0, 1),), semantics=Semantics.AT_LEAST, required=2
            )
        with pytest.raises(ModelError):
            ComplexExecutionInterval(
                eis=(make_ei(0, 0, 1),), semantics=Semantics.AT_LEAST, required=0
            )

    def test_weight_must_be_positive(self):
        with pytest.raises(ModelError):
            make_cei((0, 0, 1), weight=0.0)

    def test_parent_backreference_set(self):
        c = make_cei((0, 0, 1), (1, 0, 1))
        assert all(ei.parent is c for ei in c.eis)

    def test_ei_cannot_be_shared_across_ceis(self):
        ei = make_ei(0, 0, 1)
        ComplexExecutionInterval(eis=(ei,))
        with pytest.raises(ModelError):
            ComplexExecutionInterval(eis=(ei,))

    def test_intra_resource_overlap_within_cei(self):
        overlapping = make_cei((0, 0, 5), (0, 3, 8))
        disjoint = make_cei((0, 0, 2), (0, 3, 8))
        assert overlapping.has_intra_resource_overlap()
        assert not disjoint.has_intra_resource_overlap()

    def test_iteration_and_len(self):
        c = make_cei((0, 0, 1), (1, 0, 1))
        assert len(c) == 2
        assert [ei.resource for ei in c] == [0, 1]


class TestHelpers:
    def test_cei_builder(self):
        c = cei((0, 1, 2), (3, 4, 5))
        assert c.rank == 2
        assert c.eis[1].resource == 3

    def test_intra_resource_overlap_across_groups(self):
        a = make_ei(0, 0, 4)
        b = make_ei(0, 4, 8)
        c = make_ei(1, 0, 8)
        assert intra_resource_overlap([a, b, c])

    def test_no_overlap_different_resources(self):
        assert not intra_resource_overlap([make_ei(0, 0, 9), make_ei(1, 0, 9)])

    def test_no_overlap_disjoint_same_resource(self):
        assert not intra_resource_overlap([make_ei(0, 0, 3), make_ei(0, 4, 9)])
