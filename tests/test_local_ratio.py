"""Unit and property tests for the local-ratio offline approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import gained_completeness
from repro.core.profile import ProfileSet
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.offline.enumeration import solve_exact
from repro.offline.local_ratio import (
    LocalRatioScheduler,
    approximation_ratio_bound,
)
from tests.conftest import make_cei, random_unit_instance


def solve(profiles, num_chronons, c=1.0, mode="tight"):
    scheduler = LocalRatioScheduler(mode=mode)
    return scheduler.solve(
        profiles, Epoch(num_chronons), BudgetVector.constant(c, num_chronons)
    )


class TestBasics:
    def test_mode_validated(self):
        with pytest.raises(ValueError):
            LocalRatioScheduler(mode="bogus")

    def test_empty_instance(self):
        result = solve(ProfileSet(), 5)
        assert result.completeness == 1.0
        assert result.schedule.num_probes == 0

    def test_single_unit_cei(self):
        result = solve(ProfileSet.from_ceis([make_cei((0, 2, 2))]), 5)
        assert result.captured_origins == 1
        assert result.schedule.is_probed(0, 2)

    def test_conflicting_ceis_picks_one(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 1, 1)), make_cei((1, 1, 1))]
        )
        result = solve(profiles, 5)
        assert result.captured_origins == 1

    def test_same_slot_is_shared_not_conflicting(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 1, 1)), make_cei((0, 1, 1))]
        )
        result = solve(profiles, 5)
        assert result.captured_origins == 2
        assert result.schedule.num_probes == 1

    def test_budget_two_allows_two_resources_per_chronon(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 1, 1)), make_cei((1, 1, 1)), make_cei((2, 1, 1))]
        )
        result = solve(profiles, 5, c=2.0)
        assert result.captured_origins == 2

    def test_schedule_feasible(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((r % 3, t, t)) for r, t in [(0, 0), (1, 0), (2, 1), (3, 2)]]
        )
        budget = BudgetVector.constant(1, 5)
        result = LocalRatioScheduler(mode="tight").solve(profiles, Epoch(5), budget)
        result.schedule.check_feasible(budget)

    def test_general_instance_goes_through_transform(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 3))])
        result = solve(profiles, 5)
        assert result.captured_origins == 1

    def test_completeness_matches_reported_captures(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 0), (1, 2, 2)), make_cei((1, 0, 0)), make_cei((0, 2, 2))]
        )
        result = solve(profiles, 4)
        assert gained_completeness(profiles, result.schedule) >= result.completeness


class TestPaperMode:
    def test_linking_probes_stripped_from_schedule(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 2, 2))])
        result = solve(profiles, 5, mode="paper")
        for resource, __ in result.schedule.pairs():
            assert resource >= 0

    def test_paper_mode_never_beats_tight_mode(self):
        rng = np.random.default_rng(99)
        for seed in range(5):
            profiles = random_unit_instance(
                np.random.default_rng(seed), num_resources=5, num_chronons=10,
                num_ceis=8, max_rank=3,
            )
            tight = solve(profiles, 12, mode="tight").captured_origins
            paper = solve(profiles, 12, mode="paper").captured_origins
            assert paper <= tight

    def test_linking_occupies_capacity(self):
        # Two rank-1 CEIs at chronons 2 and 3: with linking slots, CEI at
        # chronon 2 links into chronon 3 (virtual resource), and C=1 means
        # chronon 3 cannot also host the second CEI's real probe.
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 2, 2)), make_cei((1, 3, 3))]
        )
        paper = solve(profiles, 6, mode="paper")
        tight = solve(profiles, 6, mode="tight")
        assert tight.captured_origins == 2
        assert paper.captured_origins == 1


class TestApproximationGuarantee:
    def test_ratio_bound_values(self):
        assert approximation_ratio_bound(2, 1.0, unit=True) == 4
        assert approximation_ratio_bound(2, 2.0, unit=True) == 5
        assert approximation_ratio_bound(2, 1.0, unit=False) == 6
        assert approximation_ratio_bound(2, 2.0, unit=False) == 7

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_tight_mode_within_guarantee_of_optimal(self, seed):
        """Property: LR (tight) achieves >= optimal / 2k on P^[1] without
        intra-resource overlap (the setting of the paper's guarantee)."""
        rng = np.random.default_rng(seed)
        profiles = random_unit_instance(
            rng, num_resources=4, num_chronons=8, num_ceis=5, max_rank=2,
            no_overlap=True,
        )
        if profiles.num_ceis == 0:
            return
        epoch = Epoch(10)
        budget = BudgetVector.constant(1, 10)
        exact = solve_exact(profiles, epoch, budget, max_nodes=500_000)
        approx = LocalRatioScheduler(mode="tight").solve(profiles, epoch, budget)
        k = max(1, profiles.rank)
        bound = approximation_ratio_bound(k, 1.0, unit=True)
        assert approx.captured_origins * bound >= exact.captured_ceis

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_schedules_always_feasible(self, seed):
        rng = np.random.default_rng(seed)
        profiles = random_unit_instance(
            rng, num_resources=5, num_chronons=10, num_ceis=8, max_rank=3
        )
        budget = BudgetVector.constant(1, 12)
        for mode in ("tight", "paper"):
            result = LocalRatioScheduler(mode=mode).solve(profiles, Epoch(12), budget)
            result.schedule.check_feasible(budget)
            # Selected combinations really are captured by the schedule.
            for unit in result.selected:
                for chronon, resource in unit.real_slots():
                    assert result.schedule.is_probed(resource, chronon)
