"""Unit tests for completeness and runtime metrics."""

import pytest

from repro.core.errors import ModelError
from repro.core.intervals import ComplexExecutionInterval, Semantics
from repro.core.metrics import (
    RuntimeStats,
    evaluate_schedule,
    gained_completeness,
    percent_of_upper_bound,
    relative_performance,
)
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from tests.conftest import make_cei, make_ei, make_profiles


class TestEvaluateSchedule:
    def test_full_capture(self):
        profiles = make_profiles(make_cei((0, 0, 2), (1, 3, 5)))
        schedule = Schedule.from_pairs([(0, 1), (1, 4)])
        report = evaluate_schedule(profiles, schedule)
        assert report.completeness == 1.0
        assert report.captured_ceis == 1
        assert report.captured_eis == 2

    def test_partial_capture_not_counted(self):
        profiles = make_profiles(make_cei((0, 0, 2), (1, 3, 5)))
        schedule = Schedule.from_pairs([(0, 1)])
        report = evaluate_schedule(profiles, schedule)
        assert report.completeness == 0.0
        assert report.ei_completeness == 0.5

    def test_empty_profiles_complete(self):
        report = evaluate_schedule(ProfileSet(), Schedule())
        assert report.completeness == 1.0
        assert report.ei_completeness == 1.0

    def test_per_rank_breakdown(self):
        profiles = make_profiles(
            make_cei((0, 0, 0)),
            make_cei((1, 1, 1), (2, 2, 2)),
        )
        schedule = Schedule.from_pairs([(0, 0)])
        report = evaluate_schedule(profiles, schedule)
        assert report.completeness_at_rank(1) == 1.0
        assert report.completeness_at_rank(2) == 0.0
        assert report.completeness_at_rank(9) == 1.0  # vacuous

    def test_weighted_completeness(self):
        profiles = make_profiles(
            make_cei((0, 0, 0), weight=3.0),
            make_cei((1, 1, 1), weight=1.0),
        )
        schedule = Schedule.from_pairs([(0, 0)])
        report = evaluate_schedule(profiles, schedule)
        assert report.weighted_completeness == pytest.approx(0.75)
        assert report.completeness == pytest.approx(0.5)

    def test_true_window_scoring_used_by_default(self):
        ei = make_ei(0, 0, 2, true_start=5, true_finish=7)
        profiles = make_profiles(ComplexExecutionInterval(eis=(ei,)))
        schedule = Schedule.from_pairs([(0, 1)])
        assert evaluate_schedule(profiles, schedule).completeness == 0.0
        assert (
            evaluate_schedule(profiles, schedule, use_true_window=False).completeness
            == 1.0
        )

    def test_k_of_n_scoring(self):
        c = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 0), make_ei(1, 1, 1), make_ei(2, 2, 2)),
            semantics=Semantics.AT_LEAST,
            required=2,
        )
        profiles = make_profiles(c)
        assert gained_completeness(profiles, Schedule.from_pairs([(0, 0), (1, 1)])) == 1.0
        assert gained_completeness(profiles, Schedule.from_pairs([(0, 0)])) == 0.0

    def test_gained_completeness_shortcut(self):
        profiles = make_profiles(make_cei((0, 0, 0)))
        assert gained_completeness(profiles, Schedule.from_pairs([(0, 0)])) == 1.0


class TestRuntimeStats:
    def test_msec_per_ei(self):
        assert RuntimeStats(total_seconds=1.0, num_eis=500).msec_per_ei == 2.0

    def test_zero_eis_with_time_is_inf(self):
        assert RuntimeStats(total_seconds=0.5, num_eis=0).msec_per_ei == float("inf")

    def test_zero_eis_zero_time(self):
        assert RuntimeStats(total_seconds=0.0, num_eis=0).msec_per_ei == 0.0

    def test_negative_values_rejected(self):
        with pytest.raises(ModelError):
            RuntimeStats(total_seconds=-1.0, num_eis=1)
        with pytest.raises(ModelError):
            RuntimeStats(total_seconds=1.0, num_eis=-1)


class TestDerivedMetrics:
    def test_relative_performance(self):
        assert relative_performance(0.6, 0.4) == pytest.approx(1.5)

    def test_relative_performance_zero_baseline(self):
        with pytest.raises(ModelError):
            relative_performance(0.5, 0.0)

    def test_percent_of_upper_bound(self):
        assert percent_of_upper_bound(0.3, 0.6) == pytest.approx(50.0)

    def test_percent_with_degenerate_bound(self):
        assert percent_of_upper_bound(0.0, 0.0) == 100.0
        assert percent_of_upper_bound(0.0, None) == 100.0
