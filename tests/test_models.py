"""Unit tests for the update-model substrate."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.timebase import Epoch
from repro.models import (
    BinnedIntensityModel,
    EmpiricalIntervalModel,
    HomogeneousPoissonModel,
    evaluate_model,
    evaluate_predictions,
    make_model,
    pair_predictions,
    predictions_from_model,
)
from repro.traces.events import EventStream, TraceBundle
from repro.traces.poisson import poisson_trace


def stream(*chronons):
    return EventStream(resource=0, chronons=tuple(chronons))


class TestPairPredictions:
    def test_exact_match(self):
        paired = pair_predictions([1, 5, 9], [1, 5, 9])
        assert all(p.deviation == 0 for p in paired)

    def test_nearest_assignment(self):
        paired = pair_predictions([10], [2, 9, 30])
        assert paired[0].predicted_chronon == 9

    def test_monotone_walk(self):
        paired = pair_predictions([5, 20], [6, 19])
        assert [p.predicted_chronon for p in paired] == [6, 19]

    def test_no_true_events(self):
        assert pair_predictions([], [3, 4]) == []

    def test_blind_model_gets_stale_guess(self):
        paired = pair_predictions([3, 8], [])
        assert all(p.predicted_chronon == 8 for p in paired)

    def test_fewer_predictions_than_events(self):
        paired = pair_predictions([1, 2, 3, 50], [2])
        assert all(p.predicted_chronon == 2 for p in paired)


class TestQualityMetrics:
    def test_perfect_predictions(self):
        paired = pair_predictions([1, 5], [1, 5])
        quality = evaluate_predictions(paired, tolerance=0)
        assert quality.hit_rate == 1.0
        assert quality.mean_absolute_deviation == 0.0

    def test_partial_hits(self):
        paired = pair_predictions([0, 100], [0, 90])
        quality = evaluate_predictions(paired, tolerance=5)
        assert quality.hit_rate == 0.5
        assert quality.mean_absolute_deviation == 5.0

    def test_empty(self):
        quality = evaluate_predictions([], tolerance=3)
        assert quality.hit_rate == 1.0
        assert quality.num_events == 0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ModelError):
            evaluate_predictions([], tolerance=-1)


class TestHomogeneousPoissonModel:
    def test_deterministic_spacing(self):
        model = HomogeneousPoissonModel().fit([10, 20, 30, 40], horizon=100)
        predicted = model.predict(Epoch(100), np.random.default_rng(0))
        assert predicted == [12, 37, 62, 87]

    def test_empty_history_predicts_nothing(self):
        model = HomogeneousPoissonModel().fit([], horizon=100)
        assert model.predict(Epoch(100), np.random.default_rng(0)) == []

    def test_sampled_variant_reasonable_count(self):
        model = HomogeneousPoissonModel(deterministic=False)
        model.fit(list(range(0, 100, 2)), horizon=100)  # 50 events
        predicted = model.predict(Epoch(100), np.random.default_rng(1))
        assert 25 <= len(predicted) <= 75

    def test_bad_horizon(self):
        with pytest.raises(ModelError):
            HomogeneousPoissonModel().fit([1], horizon=0)

    def test_params_roundtrip(self):
        model = HomogeneousPoissonModel(deterministic=False)
        clone = HomogeneousPoissonModel(**model.params())
        assert clone.params() == model.params()


class TestBinnedIntensityModel:
    def test_concentrates_in_busy_bins(self):
        history = list(range(0, 50))  # everything in the first half
        model = BinnedIntensityModel(num_bins=2).fit(history, horizon=100)
        predicted = model.predict(Epoch(100), np.random.default_rng(0))
        assert predicted
        assert all(c < 50 for c in predicted)

    def test_total_preserved_roughly(self):
        history = [5, 15, 25, 35, 45, 55, 65, 75, 85, 95]
        model = BinnedIntensityModel(num_bins=10).fit(history, horizon=100)
        predicted = model.predict(Epoch(100), np.random.default_rng(0))
        assert len(predicted) == 10

    def test_empty_history(self):
        model = BinnedIntensityModel().fit([], horizon=100)
        assert model.predict(Epoch(100), np.random.default_rng(0)) == []

    def test_bins_validated(self):
        with pytest.raises(ModelError):
            BinnedIntensityModel(num_bins=0)

    def test_better_than_homogeneous_on_bursty_data(self):
        epoch = Epoch(200)
        rng = np.random.default_rng(5)
        burst = sorted(int(c) for c in rng.integers(0, 40, size=30))
        history = stream(*burst)
        future = stream(*sorted(int(c) for c in rng.integers(0, 40, size=30)))
        homogeneous = evaluate_model(
            HomogeneousPoissonModel(), history, future, epoch,
            np.random.default_rng(0), tolerance=10,
        )
        binned = evaluate_model(
            BinnedIntensityModel(num_bins=10), history, future, epoch,
            np.random.default_rng(0), tolerance=10,
        )
        assert binned.hit_rate >= homogeneous.hit_rate


class TestEmpiricalIntervalModel:
    def test_reproduces_regular_cadence(self):
        history = list(range(0, 100, 10))
        model = EmpiricalIntervalModel().fit(history, horizon=100)
        predicted = model.predict(Epoch(100), np.random.default_rng(0))
        assert predicted[0] == 0
        gaps = np.diff(predicted)
        assert all(g == 10 for g in gaps)

    def test_single_event_history_predicts_nothing(self):
        model = EmpiricalIntervalModel().fit([42], horizon=100)
        assert model.predict(Epoch(100), np.random.default_rng(0)) == []

    def test_min_gap_validated(self):
        with pytest.raises(ModelError):
            EmpiricalIntervalModel(min_gap=0)


class TestRegistryAndBundles:
    def test_make_model(self):
        assert isinstance(make_model("homogeneous-poisson"), HomogeneousPoissonModel)
        assert isinstance(make_model("binned-intensity", num_bins=4), BinnedIntensityModel)

    def test_make_model_unknown(self):
        with pytest.raises(ModelError):
            make_model("nope")

    def test_predictions_from_model_covers_future_resources(self):
        epoch = Epoch(100)
        history = poisson_trace(5, epoch, 10.0, np.random.default_rng(1))
        future = poisson_trace(5, epoch, 10.0, np.random.default_rng(2))
        predictions = predictions_from_model(
            HomogeneousPoissonModel(), history, future, epoch,
            np.random.default_rng(3),
        )
        assert set(predictions) == set(future.resources)
        for rid, paired in predictions.items():
            assert [p.true_chronon for p in paired] == list(
                future.stream(rid).chronons
            )

    def test_predictions_from_model_resource_isolation(self):
        # Different per-resource histories must give different predictions.
        epoch = Epoch(100)
        history = TraceBundle.from_mapping({0: [1, 2, 3], 1: list(range(0, 100, 5))})
        future = TraceBundle.from_mapping({0: [50], 1: [50]})
        predictions = predictions_from_model(
            HomogeneousPoissonModel(), history, future, epoch,
            np.random.default_rng(0),
        )
        assert predictions[0] != predictions[1]
