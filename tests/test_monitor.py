"""Unit and behavioural tests for the online monitor (Algorithm 1)."""

import pytest

from repro.core.errors import ModelError
from repro.core.metrics import gained_completeness
from repro.core.profile import ProfileSet
from repro.core.resource import Resource, ResourcePool
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.arrivals import arrival_map, arrivals_from_profiles
from repro.online.monitor import OnlineMonitor
from repro.policies import MRSF, SEDF, make_policy
from tests.conftest import make_cei, make_ei


def run_monitor(ceis, num_chronons, c=1.0, policy=None, preemptive=True, **kwargs):
    monitor = OnlineMonitor(
        policy=policy or SEDF(),
        budget=BudgetVector.constant(c, num_chronons),
        preemptive=preemptive,
        **kwargs,
    )
    monitor.run(Epoch(num_chronons), arrival_map(ceis))
    return monitor


class TestStepping:
    def test_chronons_must_increase(self):
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 10))
        monitor.step(3)
        with pytest.raises(ModelError):
            monitor.step(3)
        with pytest.raises(ModelError):
            monitor.step(2)

    def test_no_probe_without_candidates(self):
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 10))
        assert monitor.step(0) == frozenset()
        assert monitor.probes_used == 0

    def test_single_cei_captured(self):
        monitor = run_monitor([make_cei((0, 2, 4))], 10)
        assert monitor.pool.num_satisfied == 1
        assert monitor.schedule.captures_ei(
            make_ei(0, 2, 4)
        )  # a probe fell inside [2, 4]

    def test_budget_never_exceeded(self):
        ceis = [make_cei((r, 0, 3)) for r in range(5)]
        monitor = run_monitor(ceis, 10, c=2.0)
        monitor.check_budget_feasible()
        for chronon in range(10):
            assert len(monitor.schedule.probes_at(chronon)) <= 2

    def test_zero_budget_probes_nothing(self):
        monitor = run_monitor([make_cei((0, 0, 5))], 10, c=0.0)
        assert monitor.probes_used == 0

    def test_probe_captures_all_eis_on_resource(self):
        ceis = [make_cei((0, 0, 5)), make_cei((0, 2, 8))]
        monitor = run_monitor(ceis, 10)
        # One probe of resource 0 within [2, 5] can serve both CEIs.
        assert monitor.pool.num_satisfied == 2
        assert monitor.probes_used <= 2

    def test_overlap_ablation_captures_single_ei(self):
        ceis = [make_cei((0, 0, 0)), make_cei((0, 0, 0))]
        monitor = run_monitor(ceis, 1, exploit_overlap=False)
        assert monitor.pool.num_satisfied == 1

    def test_expired_cei_counted_failed(self):
        ceis = [make_cei((0, 0, 0)), make_cei((1, 0, 0))]
        monitor = run_monitor(ceis, 5, c=1.0)
        assert monitor.pool.num_satisfied == 1
        assert monitor.pool.num_failed == 1

    def test_believed_completeness(self):
        ceis = [make_cei((0, 0, 0)), make_cei((1, 0, 0))]
        monitor = run_monitor(ceis, 5)
        assert monitor.believed_completeness == pytest.approx(0.5)

    def test_believed_completeness_empty_run(self):
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 5))
        assert monitor.believed_completeness == 1.0


class TestPreemption:
    def _competitive_instance(self):
        # An in-progress CEI competes with a fresh one on the same chronon.
        started = make_cei((0, 0, 1), (1, 2, 2))
        fresh = make_cei((2, 2, 2))
        return [started, fresh]

    def test_non_preemptive_prefers_started_cei(self):
        monitor = run_monitor(
            self._competitive_instance(), 5, policy=SEDF(), preemptive=False
        )
        # At chronon 2 both (1,2,2) and (2,2,2) are candidates; the
        # non-preemptive pass must finish the started CEI first.
        assert monitor.schedule.is_probed(1, 2)

    def test_preemptive_follows_policy_order(self):
        policy = SEDF()
        monitor = run_monitor(
            self._competitive_instance(), 5, policy=policy, preemptive=True
        )
        # Both candidates have equal deadline; tie-break by seq favours the
        # started CEI's second EI (created earlier) — still probed, but via
        # the global ranking rather than the cands+ phase.
        assert monitor.schedule.is_probed(1, 2)

    def test_preemption_changes_outcome_under_pressure(self):
        # Non-preemptive S-EDF wastes the chronon-2 probe on the started
        # CEI even though it can never be completed.
        started = make_cei((0, 0, 1), (1, 2, 2), (3, 10, 10))
        # make the started CEI impossible: EI on resource 3 at chronon 10
        # exists, but resource 4's fresh CEI shares chronon 2.
        fresh = make_cei((4, 2, 2))
        hog = make_cei((3, 10, 10))
        ceis = [started, fresh, hog]
        non_preemptive = run_monitor(list(ceis), 12, policy=MRSF(), preemptive=False)
        assert non_preemptive.schedule.is_probed(1, 2)

    def test_mrsf_preemptive_prefers_low_residual(self):
        big = make_cei((0, 0, 0), (1, 0, 5), (2, 0, 5))
        small = make_cei((3, 0, 0))
        monitor = run_monitor([big, small], 6, policy=MRSF(), preemptive=True)
        # At chronon 0 MRSF prefers the rank-1 CEI (residual 1 < 3).
        assert monitor.schedule.is_probed(3, 0)


class TestSiblingRefresh:
    def test_capture_promotes_siblings_same_chronon(self):
        # Budget 2: after capturing one EI of the pair CEI, its sibling's
        # MRSF residual drops to 1 and must win over the fresh rank-2 CEI.
        pair = make_cei((0, 0, 0), (1, 0, 0))
        other = make_cei((2, 0, 0), (3, 0, 5))
        monitor = run_monitor([pair, other], 6, c=2.0, policy=MRSF())
        assert monitor.schedule.is_probed(0, 0)
        assert monitor.schedule.is_probed(1, 0)
        assert monitor.pool.captured_count(pair) == 2


class TestPushAndCosts:
    def test_push_enabled_resource_captured_for_free(self):
        pool = ResourcePool([Resource(rid=0, push_enabled=True), Resource(rid=1)])
        ceis = [make_cei((0, 2, 5)), make_cei((1, 2, 5))]
        monitor = OnlineMonitor(
            SEDF(), BudgetVector.constant(1, 10), resources=pool
        )
        monitor.run(Epoch(10), arrival_map(ceis))
        assert monitor.pool.num_satisfied == 2
        # The push capture consumed no budget.
        assert monitor.budget_consumed_at(2) <= 1.0
        monitor.check_budget_feasible()

    def test_heterogeneous_costs_respected(self):
        pool = ResourcePool(
            [Resource(rid=0, probe_cost=3.0), Resource(rid=1, probe_cost=1.0)]
        )
        ceis = [make_cei((0, 0, 0)), make_cei((1, 0, 0))]
        monitor = OnlineMonitor(
            SEDF(), BudgetVector.constant(1, 3), resources=pool
        )
        monitor.run(Epoch(3), arrival_map(ceis))
        # Resource 0 costs 3 > budget 1; only resource 1 is probed.
        assert monitor.schedule.is_probed(1, 0)
        assert not monitor.schedule.is_probed(0, 0)

    def test_expensive_resource_fits_bigger_budget(self):
        pool = ResourcePool(
            [Resource(rid=0, probe_cost=3.0), Resource(rid=1, probe_cost=1.0)]
        )
        ceis = [make_cei((0, 0, 0)), make_cei((1, 0, 0))]
        monitor = OnlineMonitor(
            SEDF(), BudgetVector.constant(4, 3), resources=pool
        )
        monitor.run(Epoch(3), arrival_map(ceis))
        assert monitor.schedule.is_probed(0, 0)
        assert monitor.schedule.is_probed(1, 0)


class TestArrivals:
    def test_arrival_map_groups_by_release(self):
        a = make_cei((0, 3, 5), (1, 7, 9))
        b = make_cei((2, 3, 4))
        arrivals = arrival_map([a, b])
        assert set(arrivals) == {3}
        assert len(arrivals[3]) == 2

    def test_arrivals_from_profiles(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 2, 4))])
        arrivals = arrivals_from_profiles(profiles)
        assert 2 in arrivals

    def test_run_returns_schedule_consistent_with_metrics(self):
        ceis = [make_cei((0, 0, 3)), make_cei((1, 1, 4))]
        profiles = ProfileSet.from_ceis(ceis)
        monitor = OnlineMonitor(SEDF(), BudgetVector.constant(1, 6))
        schedule = monitor.run(Epoch(6), arrivals_from_profiles(profiles))
        assert gained_completeness(profiles, schedule) == monitor.believed_completeness


class TestResourceLevelPolicies:
    def test_wic_probes_resources_without_active_eis(self):
        # Resource 0 updates at chronon 0 (w=0 EI); WIC keeps its content
        # alive (overwrite life) and may probe it at chronon 1 even though
        # the EI is already dead.
        wic = make_policy("WIC")
        ceis = [make_cei((0, 0, 0)), make_cei((1, 0, 0))]
        monitor = OnlineMonitor(wic, BudgetVector.constant(1, 3))
        monitor.run(Epoch(3), arrival_map(ceis))
        probed_chronon_1 = monitor.schedule.probes_at(1)
        assert probed_chronon_1  # stale content still attracts WIC probes
