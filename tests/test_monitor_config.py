"""The unified MonitorConfig API and its deprecation shims.

One frozen config object replaces the loose ``engine=``/``faults=``/
``retry=``/``workers=`` keywords across all four entry points
(``OnlineMonitor``, ``MonitoringProxy``, ``run_suite``, ``sweep``).
These tests pin the enum coercion, the dataclass validation, and —
per entry point — that the graduated legacy keywords now raise a
``TypeError`` naming the ``config=`` replacement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.resource import ResourcePool
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online import (
    ENGINES,
    Engine,
    FailureModel,
    MonitorConfig,
    OnlineMonitor,
    RetryPolicy,
    resolve_config,
)
from repro.policies import SEDF
from repro.proxy import MonitoringProxy
from repro.sim.runner import run_suite, sweep
from tests.conftest import make_cei, random_general_instance


class TestEngineEnum:
    def test_members_match_legacy_tuple(self):
        assert ENGINES == ("reference", "vectorized", "auto")
        assert Engine.REFERENCE == "reference"
        assert Engine.VECTORIZED == "vectorized"
        assert Engine.AUTO == "auto"

    def test_coerce_accepts_strings_and_members(self):
        assert Engine.coerce("vectorized") is Engine.VECTORIZED
        assert Engine.coerce(Engine.REFERENCE) is Engine.REFERENCE

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ModelError, match="unknown engine 'quantum'"):
            Engine.coerce("quantum")


class TestMonitorConfig:
    def test_defaults(self):
        cfg = MonitorConfig()
        assert cfg.engine is Engine.REFERENCE
        assert cfg.faults is None and cfg.retry is None and cfg.workers is None

    def test_engine_string_coerced_on_construction(self):
        assert MonitorConfig(engine="vectorized").engine is Engine.VECTORIZED

    def test_unknown_engine_rejected(self):
        with pytest.raises(ModelError, match="engine"):
            MonitorConfig(engine="quantum")

    def test_workers_validated(self):
        assert MonitorConfig(workers=4).workers == 4
        with pytest.raises(ModelError, match="workers"):
            MonitorConfig(workers=0)

    def test_frozen(self):
        cfg = MonitorConfig()
        with pytest.raises(AttributeError):
            cfg.engine = Engine.VECTORIZED

    def test_replace_revalidates(self):
        cfg = MonitorConfig()
        assert cfg.replace(engine="vectorized").engine is Engine.VECTORIZED
        assert cfg.engine is Engine.REFERENCE  # original untouched
        with pytest.raises(ModelError):
            cfg.replace(engine="quantum")

    def test_retry_without_faults_allowed_as_template(self):
        # sweep templates carry a retry policy while per-point failure
        # models arrive later; only the monitor rejects the combination.
        cfg = MonitorConfig(retry=RetryPolicy(max_retries=1))
        assert cfg.faults is None
        with pytest.raises(ModelError, match="retry"):
            OnlineMonitor(SEDF(), BudgetVector.constant(1, 5), config=cfg)

    def test_health_defaults_none(self):
        assert MonitorConfig().health is None

    def test_health_without_faults_allowed_as_template(self):
        # Same template rule as retry: the config carries the health
        # knobs, sweep injects per-point failure models later.
        from repro.online import HealthConfig

        cfg = MonitorConfig(health=HealthConfig())
        assert cfg.faults is None
        with pytest.raises(ModelError, match="health"):
            OnlineMonitor(SEDF(), BudgetVector.constant(1, 5), config=cfg)

    def test_health_replace_revalidates(self):
        from repro.online import HealthConfig

        cfg = MonitorConfig(faults=FailureModel(rate=0.1))
        assert cfg.replace(health=HealthConfig()).health is not None
        assert cfg.health is None  # original untouched


class TestResolveConfig:
    def test_none_yields_defaults(self):
        assert resolve_config(None) == MonitorConfig()

    def test_config_passes_through(self):
        cfg = MonitorConfig(engine="vectorized")
        assert resolve_config(cfg) is cfg

    def test_legacy_keywords_raise_type_error(self):
        with pytest.raises(TypeError, match=r"simulate: the engine= keyword"):
            resolve_config(None, engine="vectorized", owner="simulate")

    def test_error_names_the_replacement(self):
        with pytest.raises(TypeError, match=r"config=MonitorConfig\(engine=\.\.\.\)"):
            resolve_config(None, engine="vectorized")

    def test_config_plus_legacy_still_raises(self):
        # Even alongside a valid config, a legacy keyword is a hard error
        # (the keyword is gone; there is nothing to merge).
        with pytest.raises(TypeError, match=r"engine= keyword"):
            resolve_config(MonitorConfig(), engine="vectorized")

    def test_multiple_legacy_keywords_all_named(self):
        with pytest.raises(TypeError, match=r"engine=, faults="):
            resolve_config(
                None, engine="vectorized", faults=FailureModel(rate=0.5)
            )

    def test_non_config_rejected(self):
        with pytest.raises(ModelError, match="MonitorConfig"):
            resolve_config({"engine": "vectorized"})


# ----------------------------------------------------------------------
# The four entry points
# ----------------------------------------------------------------------

EPOCH = Epoch(15)


def _profiles(seed=0):
    rng = np.random.default_rng(seed)
    return random_general_instance(
        rng, num_resources=4, num_chronons=15, num_ceis=10, max_rank=2, max_width=3
    )


def _instance_factory(rng):
    return random_general_instance(
        rng, num_resources=4, num_chronons=15, num_ceis=10, max_rank=2, max_width=3
    )


class TestEntryPointShims:
    """Every entry point accepts config= and shims the old keywords."""

    def test_monitor_accepts_config(self):
        monitor = OnlineMonitor(
            SEDF(),
            BudgetVector.constant(1, 15),
            config=MonitorConfig(engine="vectorized"),
        )
        assert monitor.engine == "vectorized"
        assert monitor.config.engine is Engine.VECTORIZED

    def test_monitor_legacy_engine_raises(self):
        with pytest.raises(TypeError, match=r"OnlineMonitor: the engine="):
            OnlineMonitor(
                SEDF(), BudgetVector.constant(1, 15), engine="vectorized"
            )

    def test_monitor_legacy_faults_raises(self):
        with pytest.raises(TypeError, match=r"faults="):
            OnlineMonitor(
                SEDF(), BudgetVector.constant(1, 15), faults=FailureModel(rate=0.5)
            )

    def test_monitor_config_plus_legacy_raises(self):
        with pytest.raises(TypeError, match=r"engine= keyword"):
            OnlineMonitor(
                SEDF(),
                BudgetVector.constant(1, 15),
                config=MonitorConfig(),
                engine="vectorized",
            )

    def test_proxy_accepts_config_and_legacy_raises(self):
        pool = ResourcePool.from_names(["A", "B"])
        proxy = MonitoringProxy(
            Epoch(10), pool, budget=1.0, config=MonitorConfig(engine="vectorized")
        )
        assert proxy.engine == "vectorized"
        with pytest.raises(TypeError, match=r"MonitoringProxy: the engine="):
            MonitoringProxy(Epoch(10), pool, budget=1.0, engine="vectorized")

    def test_run_suite_accepts_config_and_legacy_raises(self):
        budget = BudgetVector.constant(1, 15)
        via_config = run_suite(
            _instance_factory, EPOCH, budget, [("MRSF", True)],
            repetitions=2, config=MonitorConfig(engine="vectorized"),
        )
        assert via_config["MRSF(P)"].completeness_mean >= 0.0
        with pytest.raises(TypeError, match=r"run_suite: the engine="):
            run_suite(
                _instance_factory, EPOCH, budget, [("MRSF", True)],
                repetitions=2, engine="vectorized",
            )

    def test_sweep_accepts_config_and_legacy_raises(self):
        kwargs = dict(
            make_instance_for=lambda value: _instance_factory,
            epoch_for=lambda value: EPOCH,
            budget_for=lambda value: BudgetVector.constant(value, 15),
            policies=[("MRSF", True)],
            repetitions=1,
        )
        via_config = sweep([1], config=MonitorConfig(engine="vectorized"), **kwargs)
        assert via_config[1]["MRSF(P)"].completeness_mean >= 0.0
        with pytest.raises(TypeError, match=r"sweep: the engine="):
            sweep([1], engine="vectorized", **kwargs)

    def test_sweep_faults_for_overrides_template_per_point(self):
        template = MonitorConfig(retry=RetryPolicy(max_retries=1))
        results = sweep(
            [0.0, 1.0],
            make_instance_for=lambda value: _instance_factory,
            epoch_for=lambda value: EPOCH,
            budget_for=lambda value: BudgetVector.constant(2, 15),
            policies=[("MRSF", True)],
            repetitions=2,
            config=template,
            faults_for=lambda value: (
                FailureModel(rate=value, seed=3) if value else None
            ),
        )
        clean = results[0.0]["MRSF(P)"]
        dead = results[1.0]["MRSF(P)"]
        assert clean.probes_failed_mean == 0.0
        assert dead.completeness_mean == 0.0
        assert dead.probes_failed_mean > 0

    def test_no_bare_keywords_left_in_src(self):
        """The redesign's acceptance check: src/ calls go through config=."""
        import pathlib
        import re

        pattern = re.compile(r"\b(?:engine|faults|retry)\s*=\s*(?!None\b)")
        offenders = []
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        for path in src.rglob("*.py"):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                stripped = line.split("#", 1)[0]
                if "=" not in stripped:
                    continue
                if re.search(r"def \w+|^\s*(?:engine|faults|retry)\s*[:=]", stripped):
                    continue  # definitions and config-field assignments
                if pattern.search(stripped) and "MonitorConfig(" not in stripped:
                    if re.search(r"\b(?:simulate|OnlineMonitor|MonitoringProxy|run_suite|sweep)\s*\(", stripped):
                        offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)
