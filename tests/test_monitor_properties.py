"""Differential property tests of the online monitor.

These pin down engine equivalences that must hold regardless of policy
or workload, catching subtle regressions that output-level tests miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import gained_completeness
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.arrivals import arrivals_from_profiles
from repro.online.monitor import OnlineMonitor
from repro.policies import make_policy
from tests.conftest import random_general_instance, random_unit_instance


def run_once(profiles, num_chronons, policy_name, c=1.0, preemptive=True):
    monitor = OnlineMonitor(
        make_policy(policy_name),
        BudgetVector.constant(c, num_chronons),
        preemptive=preemptive,
    )
    monitor.run(Epoch(num_chronons), arrivals_from_profiles(profiles))
    return monitor


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_identical_runs_produce_identical_schedules(self, seed):
        profiles = random_general_instance(np.random.default_rng(seed))
        a = run_once(profiles, 25, "MRSF")
        b = run_once(profiles, 25, "MRSF")
        assert a.schedule.probes == b.schedule.probes

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_step_granularity_is_irrelevant(self, seed):
        """Stepping one chronon at a time equals a batched run."""
        profiles = random_general_instance(np.random.default_rng(seed))
        arrivals = arrivals_from_profiles(profiles)
        batched = run_once(profiles, 25, "M-EDF")

        stepped = OnlineMonitor(
            make_policy("M-EDF"), BudgetVector.constant(1, 25)
        )
        for chronon in range(25):
            stepped.step(chronon, arrivals.get(chronon, ()))
        assert stepped.schedule.probes == batched.schedule.probes


class TestPreemptionEquivalences:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_modes_agree_when_budget_is_ample(self, seed):
        """With budget >= distinct active resources, the cands+/cands-
        split cannot matter: everything active is probed either way."""
        profiles = random_unit_instance(
            np.random.default_rng(seed), num_resources=3, num_chronons=10,
            num_ceis=5, max_rank=2,
        )
        preemptive = run_once(profiles, 12, "MRSF", c=3.0, preemptive=True)
        non_preemptive = run_once(profiles, 12, "MRSF", c=3.0, preemptive=False)
        assert preemptive.pool.num_satisfied == non_preemptive.pool.num_satisfied
        assert preemptive.schedule.probes == non_preemptive.schedule.probes


class TestAccountingInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000), c=st.integers(1, 3))
    def test_registered_equals_satisfied_plus_failed_after_epoch(self, seed, c):
        profiles = random_general_instance(np.random.default_rng(seed))
        horizon = max(25, profiles.horizon)
        monitor = run_once(profiles, horizon, "S-EDF", c=float(c))
        pool = monitor.pool
        # After the full epoch no CEI can still be open.
        assert pool.num_open == 0
        assert pool.num_registered == profiles.num_ceis

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_probe_count_matches_schedule(self, seed):
        profiles = random_general_instance(np.random.default_rng(seed))
        monitor = run_once(profiles, 25, "HYBRID")
        assert monitor.probes_used == monitor.schedule.num_probes

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_scoring_agrees_across_policies_on_trivial_budget(self, seed):
        """With effectively unlimited budget every policy captures every
        capturable CEI — policy choice cannot matter."""
        profiles = random_general_instance(
            np.random.default_rng(seed), num_resources=4, num_ceis=6
        )
        results = set()
        for name in ("S-EDF", "MRSF", "M-EDF", "FIFO"):
            monitor = run_once(profiles, 25, name, c=10.0)
            results.add(gained_completeness(profiles, monitor.schedule))
        assert len(results) == 1
        # And that unique value is 1.0: budget 10 >= active resources.
        assert results.pop() == pytest.approx(1.0)
