"""Unit tests for the FPN(Z) noise model and Poisson-model predictions."""

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.core.timebase import Epoch
from repro.traces.events import EventStream, TraceBundle
from repro.traces.noise import (
    FPNModel,
    PredictedEvent,
    perfect_predictions,
    poisson_model_predictions,
)


def stream(*chronons: int) -> EventStream:
    return EventStream(resource=0, chronons=tuple(chronons))


class TestFPNModel:
    def test_z_validated(self):
        with pytest.raises(TraceError):
            FPNModel(z=1.5)
        with pytest.raises(TraceError):
            FPNModel(z=-0.1)

    def test_max_shift_validated(self):
        with pytest.raises(TraceError):
            FPNModel(z=0.5, max_shift=0)

    def test_noise_level(self):
        assert FPNModel(z=0.7).noise_level == pytest.approx(0.3)

    def test_perfect_model_never_deviates(self):
        model = FPNModel(z=1.0)
        predictions = model.predict_stream(
            stream(1, 5, 9), Epoch(20), np.random.default_rng(0)
        )
        assert all(p.deviation == 0 for p in predictions)

    def test_fully_noisy_model_always_deviates(self):
        model = FPNModel(z=0.0, max_shift=3)
        predictions = model.predict_stream(
            stream(5, 10, 15), Epoch(30), np.random.default_rng(1)
        )
        assert all(p.deviation != 0 for p in predictions)

    def test_deviation_bounded_by_max_shift(self):
        model = FPNModel(z=0.0, max_shift=4)
        predictions = model.predict_stream(
            stream(*range(5, 50, 3)), Epoch(60), np.random.default_rng(2)
        )
        assert all(1 <= abs(p.deviation) <= 4 for p in predictions)

    def test_predictions_clamped_to_epoch(self):
        model = FPNModel(z=0.0, max_shift=10)
        predictions = model.predict_stream(
            stream(0, 19), Epoch(20), np.random.default_rng(3)
        )
        for p in predictions:
            assert 0 <= p.predicted_chronon <= 19

    def test_pairing_preserves_truth(self):
        model = FPNModel(z=0.5, max_shift=5)
        truth = (2, 8, 14)
        predictions = model.predict_stream(
            stream(*truth), Epoch(30), np.random.default_rng(4)
        )
        assert tuple(p.true_chronon for p in predictions) == truth

    def test_predict_bundle_covers_all_resources(self):
        bundle = TraceBundle.from_mapping({0: [1, 2], 3: [5]})
        model = FPNModel(z=0.5)
        predictions = model.predict_bundle(bundle, Epoch(10), np.random.default_rng(5))
        assert set(predictions) == {0, 3}

    def test_noise_rate_matches_z(self):
        model = FPNModel(z=0.75, max_shift=3)
        truth = tuple(range(10, 2000, 2))
        predictions = model.predict_stream(
            stream(*truth), Epoch(3000), np.random.default_rng(6)
        )
        deviated = sum(1 for p in predictions if p.deviation != 0)
        rate = deviated / len(predictions)
        assert 0.18 < rate < 0.33  # expected 0.25


class TestPerfectPredictions:
    def test_identity(self):
        bundle = TraceBundle.from_mapping({0: [1, 4], 1: [2]})
        predictions = perfect_predictions(bundle)
        assert predictions[0] == [
            PredictedEvent(1, 1),
            PredictedEvent(4, 4),
        ]


class TestPoissonModelPredictions:
    def test_pairs_every_event(self):
        bundle = TraceBundle.from_mapping({0: [1, 2, 3, 900]})
        predictions = poisson_model_predictions(bundle, Epoch(1000))
        assert [p.true_chronon for p in predictions[0]] == [1, 2, 3, 900]

    def test_model_spreads_events_evenly(self):
        bundle = TraceBundle.from_mapping({0: [0, 1, 2, 3]})
        predictions = poisson_model_predictions(bundle, Epoch(100))
        model_times = [p.predicted_chronon for p in predictions[0]]
        assert model_times == [12, 37, 62, 87]

    def test_bursty_stream_gets_large_deviations(self):
        # All real events in a burst at the start; the model spreads them.
        bundle = TraceBundle.from_mapping({0: list(range(10))})
        predictions = poisson_model_predictions(bundle, Epoch(1000))
        assert max(abs(p.deviation) for p in predictions[0]) > 500
