"""The process-parallel simulation suite must equal the serial one.

``run_suite(workers=N)`` fans (repetition, policy) cells over a process
pool but derives every repetition's instance from the same SeedSequence
child the serial loop uses, so all statistics that depend only on the
schedules — completeness, probe counts, their means and deviations —
must come out identical, seed for seed and engine for engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.config import MonitorConfig
from repro.sim.runner import run_suite, sweep
from repro.traces.noise import perfect_predictions
from repro.traces.poisson import poisson_trace
from repro.workloads.generator import GeneratorSpec, generate_profiles
from repro.workloads.templates import LengthRule

EPOCH = Epoch(60)
POLICIES = [("S-EDF", True), ("MRSF", True), ("M-EDF", False)]


def make_instance(rng: np.random.Generator):
    trace = poisson_trace(25, EPOCH, 5.0, rng)
    return generate_profiles(
        perfect_predictions(trace),
        EPOCH,
        GeneratorSpec(num_profiles=30, rank_max=4),
        LengthRule.window(6),
        rng,
    )


def _suite(repetitions: int = 4, **kwargs):
    return run_suite(
        make_instance,
        EPOCH,
        BudgetVector.constant(1, len(EPOCH)),
        POLICIES,
        repetitions=repetitions,
        seed=17,
        **kwargs,
    )


def assert_same_statistics(left, right):
    assert left.keys() == right.keys()
    for label in left:
        assert left[label].completeness_mean == right[label].completeness_mean
        assert left[label].completeness_std == right[label].completeness_std
        assert left[label].probes_mean == right[label].probes_mean
        assert left[label].repetitions == right[label].repetitions


class TestParallelSuite:
    def test_workers_match_serial(self):
        serial = _suite()
        parallel = _suite(config=MonitorConfig(workers=2))
        # The workload must be contended enough to discriminate policies,
        # otherwise equality is vacuous.
        assert any(agg.completeness_mean < 1.0 for agg in serial.values())
        assert_same_statistics(serial, parallel)

    def test_vectorized_engine_matches_serial_reference(self):
        serial = _suite()
        parallel_vec = _suite(config=MonitorConfig(engine="vectorized", workers=3))
        assert_same_statistics(serial, parallel_vec)

    def test_offline_cell_supported(self):
        serial = _suite(include_offline=True, repetitions=2)
        parallel = _suite(include_offline=True, repetitions=2, config=MonitorConfig(workers=2))
        assert "OFFLINE-LR" in parallel
        assert_same_statistics(serial, parallel)

    def test_workers_one_is_serial(self):
        assert_same_statistics(_suite(), _suite(config=MonitorConfig(workers=1)))

    def test_more_workers_than_repetitions(self):
        """Idle pool slots are harmless: chunking is per repetition."""
        serial = _suite(repetitions=2)
        parallel = _suite(repetitions=2, config=MonitorConfig(workers=6))
        assert_same_statistics(serial, parallel)


class TestRepetitionTask:
    """The worker task itself, run in-process against pinned context."""

    def test_run_repetition_matches_serial_cells(self):
        from repro.sim import runner

        children = np.random.SeedSequence(17).spawn(2)
        budget = BudgetVector.constant(1, len(EPOCH))
        config = MonitorConfig(engine="vectorized")
        runner._WORKER_FACTORY = make_instance
        runner._init_suite_worker((EPOCH, budget, list(POLICIES), config, 100_000))
        try:
            rep, cells = runner._run_repetition(1, children[1])
        finally:
            runner._WORKER_FACTORY = None
            runner._init_suite_worker(None)
        assert rep == 1
        assert [label for label, __ in cells] == [
            f"{name}({'P' if preemptive else 'NP'})" for name, preemptive in POLICIES
        ]
        # The serial loop on the same child seed produces the same runs.
        from repro.sim.engine import simulate

        profiles = make_instance(np.random.default_rng(children[1]))
        for (label, result), (name, preemptive) in zip(cells, POLICIES):
            expected = simulate(
                profiles, EPOCH, budget, name, preemptive=preemptive, config=config
            )
            assert result.schedule.probes == expected.schedule.probes
            assert result.completeness == expected.completeness


def test_sweep_forwards_workers():
    def factory_for(value):
        return make_instance

    serial = sweep(
        [1, 2],
        factory_for,
        lambda value: EPOCH,
        lambda value: BudgetVector.constant(value, len(EPOCH)),
        POLICIES,
        repetitions=2,
        seed=5,
    )
    parallel = sweep(
        [1, 2],
        factory_for,
        lambda value: EPOCH,
        lambda value: BudgetVector.constant(value, len(EPOCH)),
        POLICIES,
        repetitions=2,
        seed=5,
        config=MonitorConfig(engine="vectorized", workers=2),
    )
    for value in (1, 2):
        assert_same_statistics(serial[value], parallel[value])
