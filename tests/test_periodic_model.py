"""Tests for the cycle-aware periodic update model."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.timebase import Epoch
from repro.models import (
    HomogeneousPoissonModel,
    PeriodicIntensityModel,
    evaluate_model,
    make_model,
)
from repro.traces.events import EventStream


def periodic_stream(
    epoch_length: int, cycles: int, duty: float, rng: np.random.Generator,
    rate: float = 0.5,
) -> EventStream:
    """Events only in the first ``duty`` fraction of every cycle."""
    period = epoch_length / cycles
    events = []
    for chronon in range(epoch_length):
        phase = (chronon % period) / period
        if phase < duty and rng.random() < rate:
            events.append(chronon)
    return EventStream(resource=0, chronons=tuple(events))


class TestFitting:
    def test_detects_cycle_count(self):
        rng = np.random.default_rng(1)
        history = periodic_stream(600, 12, 0.3, rng)
        model = PeriodicIntensityModel().fit(history.chronons, 600)
        assert model.detected_cycles == 12

    def test_no_cycle_on_uniform_history(self):
        rng = np.random.default_rng(2)
        events = sorted(int(c) for c in rng.choice(600, size=120, replace=False))
        model = PeriodicIntensityModel().fit(events, 600)
        assert model.detected_cycles == 0

    def test_empty_history(self):
        model = PeriodicIntensityModel().fit([], 600)
        assert model.predict(Epoch(600), np.random.default_rng(0)) == []

    def test_params_roundtrip(self):
        model = PeriodicIntensityModel(phase_bins=8, detection_bins=100)
        clone = PeriodicIntensityModel(**model.params())
        assert clone.params() == model.params()

    def test_validation(self):
        with pytest.raises(ModelError):
            PeriodicIntensityModel(phase_bins=0)
        with pytest.raises(ModelError):
            PeriodicIntensityModel().fit([1], 0)

    def test_registered(self):
        assert isinstance(
            make_model("periodic-intensity"), PeriodicIntensityModel
        )


class TestPrediction:
    def test_predictions_concentrate_in_busy_phase(self):
        rng = np.random.default_rng(3)
        history = periodic_stream(600, 12, 0.3, rng)
        model = PeriodicIntensityModel().fit(history.chronons, 600)
        predicted = model.predict(Epoch(600), np.random.default_rng(0))
        assert predicted
        period = 600 / 12
        in_busy_phase = sum(1 for c in predicted if (c % period) / period < 0.35)
        assert in_busy_phase / len(predicted) > 0.8

    def test_beats_homogeneous_on_periodic_stream(self):
        rng = np.random.default_rng(4)
        history = periodic_stream(600, 12, 0.25, rng)
        future = periodic_stream(600, 12, 0.25, np.random.default_rng(5))
        epoch = Epoch(600)
        periodic_quality = evaluate_model(
            PeriodicIntensityModel(), history, future, epoch,
            np.random.default_rng(0), tolerance=3,
        )
        homogeneous_quality = evaluate_model(
            HomogeneousPoissonModel(), history, future, epoch,
            np.random.default_rng(0), tolerance=3,
        )
        assert periodic_quality.hit_rate > homogeneous_quality.hit_rate

    def test_degrades_to_homogeneous_without_cycle(self):
        rng = np.random.default_rng(6)
        events = sorted(int(c) for c in rng.choice(600, size=60, replace=False))
        epoch = Epoch(600)
        periodic = PeriodicIntensityModel().fit(events, 600)
        homogeneous = HomogeneousPoissonModel().fit(events, 600)
        assert periodic.predict(epoch, np.random.default_rng(0)) == (
            homogeneous.predict(epoch, np.random.default_rng(0))
        )
