"""Tests for budget planning utilities."""

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.core.timebase import Epoch
from repro.sim.planning import budget_response_curve, minimum_budget_for
from repro.traces.noise import perfect_predictions
from repro.traces.poisson import poisson_trace
from repro.workloads.generator import GeneratorSpec, generate_profiles
from repro.workloads.templates import LengthRule

EPOCH = Epoch(200)


def make_instance(rng: np.random.Generator):
    trace = poisson_trace(60, EPOCH, 6.0, rng)
    return generate_profiles(
        perfect_predictions(trace), EPOCH,
        GeneratorSpec(num_profiles=30, rank_max=3),
        LengthRule.window(6), rng,
    )


class TestMinimumBudget:
    def test_finds_small_budget_for_easy_target(self):
        budget, achieved = minimum_budget_for(
            make_instance, EPOCH, target=0.3, max_budget=8, repetitions=2
        )
        assert 1 <= budget <= 8
        assert achieved >= 0.3

    def test_minimality(self):
        budget, __ = minimum_budget_for(
            make_instance, EPOCH, target=0.8, max_budget=8, repetitions=2, seed=1
        )
        if budget > 1:
            curve = dict(
                budget_response_curve(
                    make_instance, EPOCH, [budget - 1], repetitions=2, seed=1
                )
            )
            assert curve[budget - 1] < 0.8

    def test_unreachable_target_raises(self):
        def impossible(rng):
            from repro.core.profile import ProfileSet
            from tests.conftest import make_ei
            from repro.core.intervals import ComplexExecutionInterval

            # True windows never overlap the scheduling windows: nothing
            # can ever be captured, at any budget.
            ceis = [
                ComplexExecutionInterval(
                    eis=(make_ei(0, 0, 1, true_start=100, true_finish=101),)
                )
            ]
            return ProfileSet.from_ceis(ceis)

        with pytest.raises(ExperimentError, match="unreachable"):
            minimum_budget_for(
                impossible, EPOCH, target=0.9, max_budget=4, repetitions=1
            )

    def test_target_validated(self):
        with pytest.raises(ExperimentError):
            minimum_budget_for(make_instance, EPOCH, target=0.0)
        with pytest.raises(ExperimentError):
            minimum_budget_for(make_instance, EPOCH, target=1.5)
        with pytest.raises(ExperimentError):
            minimum_budget_for(make_instance, EPOCH, target=0.5, max_budget=0)


class TestBisectionEdgeCases:
    """The bisection against stubbed completeness curves.

    Stubbing ``_mean_completeness`` pins the search logic itself: the
    minimum-budget floor, and robustness to the repetition noise that
    makes the empirical curve locally non-monotone.
    """

    @staticmethod
    def _stub(monkeypatch, curve: dict[int, float]):
        calls: list[int] = []

        def fake(make_instance, epoch, c, policy, repetitions, seed):
            calls.append(c)
            return curve[c]

        monkeypatch.setattr("repro.sim.planning._mean_completeness", fake)
        return calls

    def test_target_reachable_at_minimum_budget(self, monkeypatch):
        curve = {c: 0.5 + 0.05 * c for c in range(1, 9)}
        self._stub(monkeypatch, curve)
        budget, achieved = minimum_budget_for(
            make_instance, EPOCH, target=0.2, max_budget=8
        )
        assert budget == 1
        assert achieved == curve[1]

    def test_non_monotone_noise_still_returns_satisfying_budget(self, monkeypatch):
        # Repetition noise dents the curve at C=3; the bisection must
        # still land on a budget that meets the target, never on the dent.
        curve = {1: 0.30, 2: 0.65, 3: 0.55, 4: 0.70,
                 5: 0.72, 6: 0.74, 7: 0.76, 8: 0.90}
        self._stub(monkeypatch, curve)
        budget, achieved = minimum_budget_for(
            make_instance, EPOCH, target=0.6, max_budget=8
        )
        assert achieved >= 0.6
        assert budget == 2  # the smallest satisfying budget on the probe path

    def test_unreachable_even_at_max_budget(self, monkeypatch):
        self._stub(monkeypatch, {8: 0.4})
        with pytest.raises(ExperimentError, match="unreachable"):
            minimum_budget_for(make_instance, EPOCH, target=0.9, max_budget=8)

    def test_probes_only_within_range(self, monkeypatch):
        curve = {c: (0.0 if c < 5 else 1.0) for c in range(1, 17)}
        calls = self._stub(monkeypatch, curve)
        budget, __ = minimum_budget_for(
            make_instance, EPOCH, target=0.99, max_budget=16
        )
        assert budget == 5
        assert all(1 <= c <= 16 for c in calls)


class TestResponseCurve:
    def test_monotone_in_budget(self):
        curve = budget_response_curve(
            make_instance, EPOCH, [1, 2, 4], repetitions=2
        )
        values = [completeness for __, completeness in curve]
        assert values[0] <= values[-1] + 0.05

    def test_shape_of_output(self):
        curve = budget_response_curve(make_instance, EPOCH, [1, 3], repetitions=1)
        assert [c for c, __ in curve] == [1, 3]
        assert all(0.0 <= v <= 1.0 for __, v in curve)

    def test_budgets_preserved_verbatim(self, monkeypatch):
        """One point per requested budget, in order, coerced to int."""
        seen: list[int] = []

        def fake(make_instance_, epoch_, c, policy, repetitions, seed):
            seen.append(c)
            return 0.5

        monkeypatch.setattr("repro.sim.planning._mean_completeness", fake)
        curve = budget_response_curve(
            make_instance, EPOCH, np.asarray([4, 2, 4]), repetitions=1
        )
        assert [c for c, __ in curve] == [4, 2, 4] == seen
        assert all(isinstance(c, int) for c, __ in curve)
