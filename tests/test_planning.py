"""Tests for budget planning utilities."""

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.core.timebase import Epoch
from repro.sim.planning import budget_response_curve, minimum_budget_for
from repro.traces.noise import perfect_predictions
from repro.traces.poisson import poisson_trace
from repro.workloads.generator import GeneratorSpec, generate_profiles
from repro.workloads.templates import LengthRule

EPOCH = Epoch(200)


def make_instance(rng: np.random.Generator):
    trace = poisson_trace(60, EPOCH, 6.0, rng)
    return generate_profiles(
        perfect_predictions(trace), EPOCH,
        GeneratorSpec(num_profiles=30, rank_max=3),
        LengthRule.window(6), rng,
    )


class TestMinimumBudget:
    def test_finds_small_budget_for_easy_target(self):
        budget, achieved = minimum_budget_for(
            make_instance, EPOCH, target=0.3, max_budget=8, repetitions=2
        )
        assert 1 <= budget <= 8
        assert achieved >= 0.3

    def test_minimality(self):
        budget, __ = minimum_budget_for(
            make_instance, EPOCH, target=0.8, max_budget=8, repetitions=2, seed=1
        )
        if budget > 1:
            curve = dict(
                budget_response_curve(
                    make_instance, EPOCH, [budget - 1], repetitions=2, seed=1
                )
            )
            assert curve[budget - 1] < 0.8

    def test_unreachable_target_raises(self):
        def impossible(rng):
            from repro.core.profile import ProfileSet
            from tests.conftest import make_ei
            from repro.core.intervals import ComplexExecutionInterval

            # True windows never overlap the scheduling windows: nothing
            # can ever be captured, at any budget.
            ceis = [
                ComplexExecutionInterval(
                    eis=(make_ei(0, 0, 1, true_start=100, true_finish=101),)
                )
            ]
            return ProfileSet.from_ceis(ceis)

        with pytest.raises(ExperimentError, match="unreachable"):
            minimum_budget_for(
                impossible, EPOCH, target=0.9, max_budget=4, repetitions=1
            )

    def test_target_validated(self):
        with pytest.raises(ExperimentError):
            minimum_budget_for(make_instance, EPOCH, target=0.0)
        with pytest.raises(ExperimentError):
            minimum_budget_for(make_instance, EPOCH, target=1.5)
        with pytest.raises(ExperimentError):
            minimum_budget_for(make_instance, EPOCH, target=0.5, max_budget=0)


class TestResponseCurve:
    def test_monotone_in_budget(self):
        curve = budget_response_curve(
            make_instance, EPOCH, [1, 2, 4], repetitions=2
        )
        values = [completeness for __, completeness in curve]
        assert values[0] <= values[-1] + 0.05

    def test_shape_of_output(self):
        curve = budget_response_curve(make_instance, EPOCH, [1, 3], repetitions=1)
        assert [c for c, __ in curve] == [1, 3]
        assert all(0.0 <= v <= 1.0 for __, v in curve)
