"""Unit tests for the probing policies.

Includes the paper's two worked examples (Section IV-A, Figures 6 and 7)
as concrete regression tests of the policy value functions.
"""

import pytest

from repro.core.errors import ModelError
from repro.core.intervals import ComplexExecutionInterval
from repro.policies import (
    MEDF,
    MRSF,
    SEDF,
    FIFO,
    RandomPolicy,
    RoundRobin,
    WeightedMEDF,
    WeightedMRSF,
    WeightedSEDF,
    available_policies,
    m_edf_value,
    make_policy,
    s_edf_value,
)
from tests.conftest import make_cei, make_ei


class FakeView:
    """Minimal MonitorView: capture state by EI seq."""

    def __init__(self, captured=()):
        self._captured = set(captured)
        self.active_counts = {}

    def is_ei_captured(self, ei):
        return ei.seq in self._captured

    def captured_count(self, cei):
        return sum(1 for ei in cei.eis if ei.seq in self._captured)

    def active_uncaptured_on(self, resource):
        return self.active_counts.get(resource, 0)


class TestSEDF:
    def test_value_counts_remaining_chronons(self):
        # Paper Example 1 / Figure 6: S-EDF = 5 at chronon T.
        ei = make_ei(0, 0, 14)
        assert s_edf_value(ei, 10) == 5

    def test_value_at_deadline_is_one(self):
        assert s_edf_value(make_ei(0, 0, 7), 7) == 1

    def test_policy_prefers_earliest_deadline(self):
        view = FakeView()
        early = make_cei((0, 0, 3)).eis[0]
        late = make_cei((1, 0, 9)).eis[0]
        policy = SEDF()
        assert policy.priority(early, 2, view) < policy.priority(late, 2, view)

    def test_not_sibling_sensitive(self):
        assert not SEDF().sibling_sensitive()


class TestMRSF:
    def test_counts_remaining_eis(self):
        # Paper Example 1 / Figure 6: MRSF = 4 with nothing captured.
        c = make_cei((0, 0, 5), (1, 8, 10), (2, 12, 15), (3, 18, 22))
        assert MRSF().priority(c.eis[0], 3, FakeView()) == 4.0

    def test_decreases_with_captures(self):
        c = make_cei((0, 0, 5), (1, 8, 10), (2, 12, 15))
        view = FakeView(captured={c.eis[0].seq})
        assert MRSF().priority(c.eis[1], 9, view) == 2.0

    def test_sibling_sensitive(self):
        assert MRSF().sibling_sensitive()

    def test_profile_rank_variant(self):
        c = make_cei((0, 0, 5), (1, 8, 10))
        policy = MRSF(use_profile_rank=True)
        policy.set_profile_ranks({c.cid: 5})
        assert policy.priority(c.eis[0], 0, FakeView()) == 5.0


class TestMEDF:
    def test_example_one_figure_six(self):
        # A CEI with 4 EIs; at chronon T the current EI has 5 chronons
        # left and M-EDF accumulates 22 chronons over all remaining EIs.
        current = make_ei(0, 6, 14)  # S-EDF at T=10: 5
        future_a = make_ei(1, 16, 23)  # width 8
        future_b = make_ei(2, 25, 29)  # width 5
        future_c = make_ei(3, 31, 34)  # width 4
        cei = ComplexExecutionInterval(eis=(current, future_a, future_b, future_c))
        assert s_edf_value(current, 10) == 5
        assert m_edf_value(current, 10, FakeView()) == 5 + 8 + 5 + 4  # 22

    def test_example_two_figure_seven(self):
        # CEI_1: 4 EIs, first two captured; current EI has 5 chronons
        # left and a future sibling completes 19 remaining chronons.
        c1_done_a = make_ei(0, 0, 2)
        c1_done_b = make_ei(1, 3, 5)
        c1_current = make_ei(2, 8, 14)  # S-EDF at T=10: 5
        c1_future = make_ei(3, 16, 29)  # width 14 -> total 19
        cei1 = ComplexExecutionInterval(
            eis=(c1_done_a, c1_done_b, c1_current, c1_future)
        )
        # CEI_2: 3 EIs, none captured; current EI has 6 chronons left,
        # futures add 10 -> total 16.
        c2_current = make_ei(4, 9, 15)  # S-EDF at T=10: 6
        c2_future_a = make_ei(5, 17, 22)  # width 6
        c2_future_b = make_ei(6, 24, 27)  # width 4
        cei2 = ComplexExecutionInterval(eis=(c2_current, c2_future_a, c2_future_b))

        view = FakeView(captured={c1_done_a.seq, c1_done_b.seq})
        t = 10
        # S-EDF sticks with CEI_1 (5 < 6).
        assert s_edf_value(c1_current, t) < s_edf_value(c2_current, t)
        # MRSF sticks with CEI_1 (2 remaining < 3 remaining).
        mrsf = MRSF()
        assert mrsf.priority(c1_current, t, view) < mrsf.priority(c2_current, t, view)
        # M-EDF preempts CEI_1 in favour of CEI_2 (19 > 16).
        assert m_edf_value(c1_current, t, view) == 19
        assert m_edf_value(c2_current, t, view) == 16

    def test_captured_siblings_excluded(self):
        c = make_cei((0, 0, 4), (1, 0, 4))
        view = FakeView(captured={c.eis[1].seq})
        assert m_edf_value(c.eis[0], 0, view) == 5

    def test_sibling_sensitive(self):
        assert MEDF().sibling_sensitive()


class TestWeightedPolicies:
    def test_weighted_sedf_prefers_heavy(self):
        light = make_cei((0, 0, 9), weight=1.0)
        heavy = make_cei((1, 0, 9), weight=4.0)
        policy = WeightedSEDF()
        view = FakeView()
        assert policy.priority(heavy.eis[0], 0, view) < policy.priority(
            light.eis[0], 0, view
        )

    def test_weighted_mrsf_reduces_to_mrsf_with_unit_weights(self):
        c = make_cei((0, 0, 4), (1, 0, 4))
        view = FakeView()
        assert WeightedMRSF().priority(c.eis[0], 0, view) == MRSF().priority(
            c.eis[0], 0, view
        )

    def test_weighted_medf_scales_by_weight(self):
        c = make_cei((0, 0, 4), (1, 0, 4), weight=2.0)
        view = FakeView()
        assert WeightedMEDF().priority(c.eis[0], 0, view) == pytest.approx(
            m_edf_value(c.eis[0], 0, view) / 2.0
        )

    def test_weighted_variants_sibling_sensitive(self):
        assert WeightedMRSF().sibling_sensitive()
        assert WeightedMEDF().sibling_sensitive()


class TestNaivePolicies:
    def test_random_is_seeded_and_reproducible(self):
        c = make_cei((0, 0, 4))
        a = RandomPolicy(seed=7).priority(c.eis[0], 0, FakeView())
        b = RandomPolicy(seed=7).priority(c.eis[0], 0, FakeView())
        assert a == b

    def test_round_robin_prefers_stale_resources(self):
        policy = RoundRobin()
        policy.on_run_start(2)
        policy.on_probe(0, 5)
        a = make_cei((0, 0, 9)).eis[0]
        b = make_cei((1, 0, 9)).eis[0]
        view = FakeView()
        assert policy.priority(b, 6, view) < policy.priority(a, 6, view)

    def test_fifo_prefers_earliest_start(self):
        old = make_cei((0, 0, 9)).eis[0]
        new = make_cei((1, 5, 9)).eis[0]
        policy = FIFO()
        view = FakeView()
        assert policy.priority(old, 6, view) < policy.priority(new, 6, view)


class TestRegistry:
    def test_all_expected_policies_registered(self):
        names = available_policies()
        for expected in ["S-EDF", "MRSF", "M-EDF", "WIC", "RANDOM", "ROUND-ROBIN",
                         "FIFO", "W-S-EDF", "W-MRSF", "W-M-EDF"]:
            assert expected in names

    def test_make_policy_case_insensitive(self):
        assert isinstance(make_policy("mrsf"), MRSF)

    def test_make_policy_unknown(self):
        with pytest.raises(ModelError, match="unknown policy"):
            make_policy("NOPE")

    def test_make_policy_kwargs(self):
        policy = make_policy("RANDOM", seed=3)
        assert isinstance(policy, RandomPolicy)

    def test_sort_key_is_deterministic_tiebreak(self):
        a = make_cei((0, 0, 5)).eis[0]
        b = make_cei((1, 0, 5)).eis[0]
        policy = SEDF()
        view = FakeView()
        keys = sorted([policy.sort_key(b, 0, view), policy.sort_key(a, 0, view)])
        assert keys[0][2] == min(a.seq, b.seq)
