"""Unit tests for profiles and profile sets."""

import pytest

from repro.core.errors import ModelError
from repro.core.profile import Profile, ProfileSet
from tests.conftest import make_cei


def two_profile_set() -> ProfileSet:
    p0 = Profile(pid=0, ceis=[make_cei((0, 0, 1)), make_cei((1, 2, 3), (2, 4, 5))])
    p1 = Profile(pid=1, ceis=[make_cei((0, 6, 7), (1, 8, 9), (2, 10, 11))])
    return ProfileSet([p0, p1])


class TestProfile:
    def test_negative_pid_rejected(self):
        with pytest.raises(ModelError):
            Profile(pid=-1)

    def test_len_counts_ceis(self):
        assert len(two_profile_set()[0]) == 2

    def test_rank_is_max_cei_rank(self):
        assert two_profile_set()[0].rank == 2
        assert two_profile_set()[1].rank == 3

    def test_empty_profile_rank_zero(self):
        assert Profile(pid=0).rank == 0

    def test_num_eis(self):
        assert two_profile_set()[0].num_eis == 3

    def test_add(self):
        p = Profile(pid=0)
        p.add(make_cei((0, 0, 1)))
        assert len(p) == 1

    def test_eis_iterates_bag(self):
        assert len(list(two_profile_set()[0].eis())) == 3


class TestProfileSet:
    def test_rank_over_profiles(self):
        assert two_profile_set().rank == 3

    def test_empty_set_rank_zero(self):
        assert ProfileSet().rank == 0

    def test_num_ceis(self):
        assert two_profile_set().num_ceis == 3

    def test_num_eis(self):
        assert two_profile_set().num_eis == 6

    def test_from_ceis_single_profile(self):
        ps = ProfileSet.from_ceis([make_cei((0, 0, 1)), make_cei((1, 0, 1))])
        assert len(ps) == 1
        assert ps.num_ceis == 2

    def test_from_ceis_chunked(self):
        ceis = [make_cei((0, i, i)) for i in range(5)]
        ps = ProfileSet.from_ceis(ceis, per_profile=2)
        assert [len(p) for p in ps] == [2, 2, 1]

    def test_is_unit_true(self):
        ps = ProfileSet.from_ceis([make_cei((0, 1, 1), (1, 2, 2))])
        assert ps.is_unit

    def test_is_unit_false(self):
        ps = ProfileSet.from_ceis([make_cei((0, 1, 2))])
        assert not ps.is_unit

    def test_intra_resource_overlap_detection(self):
        with_overlap = ProfileSet.from_ceis(
            [make_cei((0, 0, 5)), make_cei((0, 3, 8))]
        )
        without = ProfileSet.from_ceis([make_cei((0, 0, 2)), make_cei((1, 3, 8))])
        assert with_overlap.has_intra_resource_overlap()
        assert not without.has_intra_resource_overlap()

    def test_resources_used(self):
        assert two_profile_set().resources_used == {0, 1, 2}

    def test_horizon(self):
        assert two_profile_set().horizon == 12

    def test_horizon_empty(self):
        assert ProfileSet().horizon == 0

    def test_rank_histogram(self):
        assert two_profile_set().rank_histogram() == {1: 1, 2: 1, 3: 1}
