"""Tests for profile-set utilities and the diurnal budget helper."""

import pytest

from repro.core.errors import ModelError
from repro.core.profile import Profile, ProfileSet
from repro.core.schedule import BudgetVector
from tests.conftest import make_cei


def mixed_set() -> ProfileSet:
    p0 = Profile(pid=0, ceis=[make_cei((0, 0, 1)), make_cei((1, 2, 3), (2, 4, 5))])
    p1 = Profile(pid=1, ceis=[make_cei((0, 6, 7), (1, 8, 9), (2, 10, 11))])
    return ProfileSet([p0, p1])


class TestFiltering:
    def test_filter_by_predicate(self):
        filtered = mixed_set().filter_ceis(lambda cei: cei.rank >= 2)
        assert filtered.num_ceis == 2
        assert len(filtered) == 2  # profiles preserved, one now has 1 CEI

    def test_restricted_to_rank(self):
        only_rank_one = mixed_set().restricted_to_rank(1)
        assert only_rank_one.num_ceis == 1
        assert only_rank_one.rank == 1

    def test_empty_filter(self):
        filtered = mixed_set().filter_ceis(lambda cei: False)
        assert filtered.num_ceis == 0
        assert len(filtered) == 2  # empty profiles remain

    def test_pids_preserved(self):
        filtered = mixed_set().filter_ceis(lambda cei: True)
        assert [p.pid for p in filtered] == [0, 1]


class TestMerging:
    def test_merged_counts(self):
        a = mixed_set()
        b = ProfileSet([Profile(pid=0, ceis=[make_cei((3, 0, 1))])])
        merged = a.merged_with(b)
        assert len(merged) == 3
        assert merged.num_ceis == a.num_ceis + b.num_ceis

    def test_merged_pids_renumbered(self):
        a = mixed_set()
        b = mixed_set()
        merged = a.merged_with(b)
        assert [p.pid for p in merged] == [0, 1, 2, 3]


class TestDiurnalBudget:
    def test_mean_near_base(self):
        budget = BudgetVector.diurnal(2.0, 0.5, periods=4, num_chronons=400)
        assert 1.8 <= budget.total / 400 <= 2.2

    def test_oscillates(self):
        budget = BudgetVector.diurnal(2.0, 1.0, periods=1, num_chronons=100)
        assert budget.maximum >= 3.0
        assert min(budget.values) <= 1.0

    def test_zero_amplitude_is_constant(self):
        budget = BudgetVector.diurnal(3.0, 0.0, periods=5, num_chronons=50)
        assert set(budget.values) == {3.0}

    def test_integer_values(self):
        budget = BudgetVector.diurnal(2.5, 0.7, periods=3, num_chronons=60)
        assert all(v == int(v) for v in budget.values)
        assert all(v >= 0 for v in budget.values)

    def test_validation(self):
        with pytest.raises(ModelError):
            BudgetVector.diurnal(1.0, 1.5, periods=1, num_chronons=10)
        with pytest.raises(ModelError):
            BudgetVector.diurnal(1.0, 0.5, periods=-1, num_chronons=10)
        with pytest.raises(ModelError):
            BudgetVector.diurnal(1.0, 0.5, periods=1, num_chronons=0)

    def test_usable_by_monitor(self):
        from repro.core.timebase import Epoch
        from repro.online.arrivals import arrivals_from_profiles
        from repro.online.monitor import OnlineMonitor
        from repro.policies import make_policy

        profiles = ProfileSet.from_ceis([make_cei((0, 10, 20)), make_cei((1, 30, 40))])
        budget = BudgetVector.diurnal(1.0, 1.0, periods=2, num_chronons=50)
        monitor = OnlineMonitor(make_policy("MRSF"), budget)
        monitor.run(Epoch(50), arrivals_from_profiles(profiles))
        monitor.check_budget_feasible()
