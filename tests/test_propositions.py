"""Tests of the paper's formal propositions (Section IV).

* Proposition 1 — S-EDF is optimal on rank-1 instances without
  intra-resource overlap.
* Proposition 2 — MRSF is l-competitive with l = max_η Σ|I| (sanity-level
  check: MRSF never falls below optimal / l).
* Proposition 3 — on ``P^[1]`` instances M-EDF and MRSF produce identical
  schedules.
* Proposition 4 — the feasible-schedule count formula.
* Proposition 5 — capturing a combination CEI captures the original, and
  any original capture corresponds to some combination.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import gained_completeness
from repro.core.profile import ProfileSet
from repro.core.schedule import BudgetVector, Schedule, count_feasible_schedules
from repro.core.timebase import Epoch
from repro.offline.enumeration import solve_exact
from repro.offline.transform import cei_to_combinations
from repro.online.arrivals import arrivals_from_profiles
from repro.online.monitor import OnlineMonitor
from repro.policies import MEDF, MRSF, SEDF
from tests.conftest import make_cei, random_unit_instance


def run_policy(profiles, num_chronons, policy, c=1.0, preemptive=True):
    monitor = OnlineMonitor(
        policy=policy,
        budget=BudgetVector.constant(c, num_chronons),
        preemptive=preemptive,
    )
    monitor.run(Epoch(num_chronons), arrivals_from_profiles(profiles))
    return monitor


def random_rank_one_no_overlap(seed: int) -> ProfileSet:
    """Rank-1 instances with non-unit widths and no intra-resource overlap."""
    rng = np.random.default_rng(seed)
    ceis = []
    next_free: dict[int, int] = {}
    for __ in range(int(rng.integers(2, 7))):
        resource = int(rng.integers(0, 4))
        start = next_free.get(resource, 0) + int(rng.integers(0, 3))
        width = int(rng.integers(1, 4))
        finish = start + width - 1
        if finish >= 14:
            continue
        next_free[resource] = finish + 1
        ceis.append(make_cei((resource, start, finish)))
    return ProfileSet.from_ceis(ceis)


class TestProposition1:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_sedf_optimal_on_rank_one_no_overlap(self, seed):
        profiles = random_rank_one_no_overlap(seed)
        if profiles.num_ceis == 0:
            return
        horizon = max(15, profiles.horizon)
        exact = solve_exact(
            profiles, Epoch(horizon), BudgetVector.constant(1, horizon),
            max_nodes=1_000_000,
        )
        monitor = run_policy(profiles, horizon, SEDF())
        assert monitor.pool.num_satisfied == exact.captured_ceis

    def test_sedf_beats_fifo_on_adversarial_deadlines(self):
        # Two EIs active together; the tight one must go first.
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 0)), make_cei((1, 0, 5))]
        )
        monitor = run_policy(profiles, 6, SEDF())
        assert monitor.pool.num_satisfied == 2


class TestProposition2:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_mrsf_within_l_of_optimal(self, seed):
        """The l-competitive bound, on *individually feasible* CEIs.

        The feasibility precondition (no CEI demands two probes at the
        same chronon under C=1) is implicit in the paper; without it the
        bound is falsifiable — see the regression test below.
        """
        rng = np.random.default_rng(seed)
        profiles = random_unit_instance(
            rng, num_resources=4, num_chronons=8, num_ceis=5, max_rank=2,
            no_overlap=True, distinct_chronons=True,
        )
        if profiles.num_ceis == 0:
            return
        exact = solve_exact(
            profiles, Epoch(10), BudgetVector.constant(1, 10), max_nodes=500_000
        )
        monitor = run_policy(profiles, 10, MRSF())
        l = max(cei.total_chronons for cei in profiles.ceis())
        assert monitor.pool.num_satisfied * l >= exact.captured_ceis

    def test_counterexample_without_feasibility_precondition(self):
        """Reproduction finding: Proposition 2 as literally stated fails
        when the instance contains CEIs that are individually infeasible
        at C=1 (two unit EIs at the same chronon).  Such decoy CEIs can
        never be captured but keep attracting MRSF's probes, blocking
        every capturable CEI; the exact optimum ignores them.  Recorded
        in EXPERIMENTS.md ("known divergences")."""
        profiles = ProfileSet.from_ceis(
            [
                make_cei((3, 0, 0), (2, 0, 0)),  # infeasible decoy at t=0
                make_cei((0, 0, 0), (2, 4, 4)),
                make_cei((0, 1, 1), (2, 1, 1)),  # infeasible decoy at t=1
                make_cei((0, 3, 3), (3, 3, 3)),  # infeasible decoy at t=3
                make_cei((2, 2, 2), (1, 1, 1)),
            ]
        )
        budget = BudgetVector.constant(1, 10)
        exact = solve_exact(profiles, Epoch(10), budget, max_nodes=500_000)
        monitor = run_policy(profiles, 10, MRSF())
        l = max(cei.total_chronons for cei in profiles.ceis())
        assert exact.captured_ceis == 2
        assert monitor.pool.num_satisfied == 0  # MRSF starved by decoys
        assert monitor.pool.num_satisfied * l < exact.captured_ceis


class TestProposition3:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_medf_equals_mrsf_on_unit_instances(self, seed):
        rng = np.random.default_rng(seed)
        profiles = random_unit_instance(
            rng, num_resources=6, num_chronons=12, num_ceis=8, max_rank=4
        )
        assert profiles.is_unit
        mrsf = run_policy(profiles, 14, MRSF())
        medf = run_policy(profiles, 14, MEDF())
        assert mrsf.schedule.probes == medf.schedule.probes
        assert mrsf.pool.num_satisfied == medf.pool.num_satisfied

    def test_medf_differs_from_mrsf_on_wide_eis(self):
        # Sanity: the equivalence is specific to unit instances.
        wide = make_cei((0, 0, 9), (1, 0, 0))
        narrow = make_cei((2, 0, 0), (3, 0, 1))
        view_profiles = ProfileSet.from_ceis([wide, narrow])
        mrsf = run_policy(view_profiles, 10, MRSF())
        medf = run_policy(view_profiles, 10, MEDF())
        # M-EDF prefers the CEI with fewer total chronons (narrow, 3 < 11);
        # MRSF sees equal residuals and falls back to deadline ties.
        assert medf.schedule.is_probed(2, 0) or medf.schedule.is_probed(3, 0)
        # Outcomes may coincide, but the value functions must differ:
        from repro.policies import m_edf_value

        class View:
            def is_ei_captured(self, ei):
                return False

            def captured_count(self, cei):
                return 0

            def active_uncaptured_on(self, resource):
                return 0

        assert m_edf_value(wide.eis[0], 0, View()) == 11
        assert m_edf_value(narrow.eis[0], 0, View()) == 3
        del mrsf


class TestProposition4:
    def test_formula_for_small_cases(self):
        # Hand-computed: n=2, K=3, C=1 -> (1 + 2)^3 = 27.
        assert count_feasible_schedules(2, BudgetVector.constant(1, 3)) == 27

    def test_budget_capped_by_resources(self):
        # C > n: all subsets of n resources (incl. empty) per chronon.
        assert count_feasible_schedules(2, BudgetVector.constant(5, 1)) == 4


class TestProposition5:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_combination_capture_iff_original_capture(self, seed):
        rng = np.random.default_rng(seed)
        cei = make_cei(
            (int(rng.integers(0, 3)), 0, int(rng.integers(0, 3))),
            (int(rng.integers(0, 3)), 4, 4 + int(rng.integers(0, 3))),
        )
        combos = cei_to_combinations(cei, origin=0, max_combinations=1000)

        # Any combination's slots, turned into probes, capture the original.
        for combo in combos:
            schedule = Schedule.from_pairs(
                [(resource, chronon) for chronon, resource in combo.slots]
            )
            assert schedule.captures_cei(cei)

        # A schedule capturing the original matches at least one combination.
        probe_schedule = Schedule()
        for ei in cei.eis:
            probe_schedule.add_probe(ei.resource, ei.start)
        assert probe_schedule.captures_cei(cei)
        matched = any(
            all(probe_schedule.is_probed(r, t) for t, r in combo.slots)
            for combo in combos
        )
        assert matched

    def test_transformed_rank_is_original_rank(self):
        cei = make_cei((0, 0, 1), (1, 3, 4), (2, 6, 6))
        combos = cei_to_combinations(cei, 0, 1000)
        assert all(c.rank == 3 for c in combos)
        combos_linked = cei_to_combinations(cei, 0, 1000, linking_horizon=10)
        assert all(c.rank == 4 for c in combos_linked)  # the paper's k+1


class TestEquationOne:
    def test_gained_completeness_is_fraction_of_captured_ceis(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 0)), make_cei((1, 1, 1)), make_cei((2, 2, 2))]
        )
        schedule = Schedule.from_pairs([(0, 0), (2, 2)])
        assert gained_completeness(profiles, schedule) == 2 / 3
