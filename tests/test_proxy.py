"""Unit tests for the proxy facade and delivery accounting."""

import pytest

from repro.core.errors import ExperimentError, ModelError
from repro.core.intervals import ComplexExecutionInterval, Semantics
from repro.online import MonitorConfig
from repro.core.profile import Profile
from repro.core.resource import Resource, ResourcePool
from repro.core.schedule import BudgetVector, Schedule
from repro.core.timebase import Epoch
from repro.proxy import MonitoringProxy
from repro.proxy.delivery import (
    client_report,
    deliveries_for,
    delivery_for,
)
from repro.traces.noise import PredictedEvent
from tests.conftest import make_cei, make_ei


class TestDelivery:
    def test_delivery_at_last_required_capture(self):
        cei = make_cei((0, 0, 5), (1, 8, 12))
        schedule = Schedule.from_pairs([(0, 3), (1, 10)])
        delivery = delivery_for(cei, schedule)
        assert delivery is not None
        assert delivery.delivered_at == 10
        assert delivery.latency == 10  # release chronon is 0

    def test_unsatisfied_cei_has_no_delivery(self):
        cei = make_cei((0, 0, 5), (1, 8, 12))
        schedule = Schedule.from_pairs([(0, 3)])
        assert delivery_for(cei, schedule) is None

    def test_k_of_n_delivers_at_kth_capture(self):
        cei = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 2), make_ei(1, 4, 6), make_ei(2, 8, 10)),
            semantics=Semantics.AT_LEAST,
            required=2,
        )
        schedule = Schedule.from_pairs([(0, 1), (1, 5), (2, 9)])
        delivery = delivery_for(cei, schedule)
        assert delivery is not None
        assert delivery.delivered_at == 5

    def test_deliveries_sorted_by_time(self):
        late = make_cei((0, 10, 12))
        early = make_cei((1, 0, 2))
        schedule = Schedule.from_pairs([(0, 11), (1, 1)])
        deliveries = deliveries_for([late, early], schedule)
        assert [d.delivered_at for d in deliveries] == [1, 11]

    def test_client_report_statistics(self):
        profile = Profile(
            pid=0, ceis=[make_cei((0, 0, 2)), make_cei((1, 4, 6)), make_cei((2, 8, 9))]
        )
        schedule = Schedule.from_pairs([(0, 1), (1, 6)])
        report = client_report("ana", profile, schedule)
        assert report.completeness == pytest.approx(2 / 3)
        assert report.mean_latency == pytest.approx((1 + 2) / 2)

    def test_empty_profile_report(self):
        report = client_report("ana", Profile(pid=0), Schedule())
        assert report.completeness == 1.0
        assert report.mean_latency == 0.0


class TestMonitoringProxy:
    def make_proxy(self, **kwargs) -> MonitoringProxy:
        pool = ResourcePool.from_names(["Blog", "CNN", "Money", "Stock"])
        defaults = dict(epoch=Epoch(100), resources=pool, budget=1.0, policy="MRSF")
        defaults.update(kwargs)
        return MonitoringProxy(**defaults)

    def test_register_and_list_clients(self):
        proxy = self.make_proxy()
        proxy.registry.register("bob")
        proxy.registry.register("ana")
        assert proxy.client_names == ["ana", "bob"]

    def test_duplicate_client_rejected(self):
        proxy = self.make_proxy()
        proxy.registry.register("ana")
        with pytest.raises(ExperimentError):
            proxy.registry.register("ana")

    def test_submit_to_unknown_client_rejected(self):
        proxy = self.make_proxy()
        with pytest.raises(ExperimentError):
            proxy.submit_ceis("ghost", [make_cei((0, 0, 5))])

    def test_submit_ceis_and_run(self):
        proxy = self.make_proxy()
        proxy.registry.register("ana")
        proxy.submit_ceis("ana", [make_cei((0, 5, 10)), make_cei((1, 20, 25))])
        result = proxy.run()
        assert result.completeness == 1.0
        assert result.client("ana").completeness == 1.0
        assert result.probes_used == 2

    def test_submit_query_text(self):
        proxy = self.make_proxy()
        proxy.registry.register("ana")
        count = proxy.submit_queries(
            "ana",
            "SELECT item AS F1; FROM feed(Blog); "
            "WHEN EVERY 20 CHRONONS AS T1; WITHIN T1+2 CHRONONS",
        )
        assert count == 5
        result = proxy.run()
        assert result.client("ana").num_ceis == 5

    def test_query_with_push_trigger(self):
        pool = ResourcePool(
            [
                Resource(rid=0, name="Stock", push_enabled=True),
                Resource(rid=1, name="CNN"),
            ]
        )
        proxy = MonitoringProxy(Epoch(50), pool, budget=1.0)
        proxy.registry.register("ana")
        proxy.submit_queries(
            "ana",
            "SELECT a AS F1; FROM feed(Stock); WHEN ON PUSH AS T1\n\n"
            "SELECT b AS F2; FROM feed(CNN); WITHIN T1+2 CHRONONS",
            predictions={0: [PredictedEvent(10, 10), PredictedEvent(30, 30)]},
        )
        result = proxy.run()
        assert result.completeness == 1.0

    def test_run_with_multiple_clients_reports_each(self):
        proxy = self.make_proxy()
        proxy.registry.register("ana")
        proxy.registry.register("bob")
        proxy.submit_ceis("ana", [make_cei((0, 0, 0))])
        proxy.submit_ceis("bob", [make_cei((1, 0, 0))])
        result = proxy.run()
        # C=1: only one of the two chronon-0 EIs can be probed.
        completenesses = sorted(c.completeness for c in result.clients)
        assert completenesses == [0.0, 1.0]
        assert result.completeness == 0.5

    def test_unknown_client_lookup(self):
        proxy = self.make_proxy()
        proxy.registry.register("ana")
        result = proxy.run()
        with pytest.raises(ExperimentError):
            result.client("ghost")

    def test_scalar_budget_broadcast(self):
        proxy = self.make_proxy(budget=2.0)
        assert proxy.budget.at(0) == 2.0
        assert len(proxy.budget) == 100

    def test_short_budget_vector_rejected(self):
        pool = ResourcePool.from_names(["Blog"])
        with pytest.raises(ExperimentError):
            MonitoringProxy(
                Epoch(100), pool, budget=BudgetVector.constant(1, 10)
            )

    def test_policy_by_instance(self):
        from repro.policies import SEDF

        proxy = self.make_proxy(policy=SEDF())
        proxy.registry.register("ana")
        proxy.submit_ceis("ana", [make_cei((0, 0, 5))])
        assert proxy.run().completeness == 1.0

    def test_engine_forwarded_to_monitor(self):
        # Regression: the facade used to drop the engine choice entirely
        # and always run the reference monitor.  Both engines must yield
        # the same schedule through the facade.
        results = {}
        for engine in ("reference", "vectorized"):
            proxy = self.make_proxy(config=MonitorConfig(engine=engine))
            proxy.registry.register("ana")
            proxy.submit_ceis(
                "ana", [make_cei((0, 0, 5)), make_cei((1, 3, 9), (2, 3, 9))]
            )
            results[engine] = proxy.run()
        assert (
            results["reference"].schedule.probes
            == results["vectorized"].schedule.probes
        )

    def test_engine_override_per_run(self):
        proxy = self.make_proxy()
        assert proxy.engine == "reference"
        proxy.registry.register("ana")
        proxy.submit_ceis("ana", [make_cei((0, 0, 5))])
        result = proxy.run(config=proxy.config.replace(engine="vectorized"))
        assert result.completeness == 1.0
        # The override is per-run only.
        assert proxy.engine == "reference"

    def test_engine_override_keyword_graduated(self):
        proxy = self.make_proxy()
        proxy.registry.register("ana")
        proxy.submit_ceis("ana", [make_cei((0, 0, 5))])
        with pytest.raises(TypeError, match=r"engine= keyword"):
            proxy.run(engine="vectorized")
        assert proxy.run(config=MonitorConfig(engine="vectorized")).completeness == 1.0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ModelError, match="engine"):
            self.make_proxy(config=MonitorConfig(engine="quantum"))

    def test_faults_forwarded_to_monitor(self):
        from repro.online.faults import FailureModel

        proxy = self.make_proxy(config=MonitorConfig(faults=FailureModel(rate=1.0)))
        proxy.registry.register("ana")
        proxy.submit_ceis("ana", [make_cei((0, 0, 5))])
        result = proxy.run()
        assert result.completeness == 0.0
        assert result.probes_failed == result.probes_used > 0


class TestClientRegistry:
    """The shared client table behind every facade (satellite: extraction)."""

    def make_proxy(self, **kwargs) -> MonitoringProxy:
        pool = ResourcePool.from_names(["Blog", "CNN"])
        defaults = dict(epoch=Epoch(30), resources=pool, budget=1.0, policy="MRSF")
        defaults.update(kwargs)
        return MonitoringProxy(**defaults)

    def test_register_returns_typed_handle(self):
        from repro.proxy import ClientHandle

        proxy = self.make_proxy()
        handle = proxy.registry.register("ana")
        assert isinstance(handle, ClientHandle)
        assert isinstance(handle, str)  # old string-keyed callers still work
        assert handle == "ana"
        assert handle.name == "ana"
        assert handle.registry is proxy.registry

    def test_handle_submit_and_ceis(self):
        proxy = self.make_proxy()
        ana = proxy.registry.register("ana")
        ana.submit([make_cei((0, 0, 5))])
        assert len(ana.ceis) == 1
        assert proxy.run().client("ana").completeness == 1.0

    def test_handle_usable_as_plain_string_key(self):
        proxy = self.make_proxy()
        ana = proxy.registry.register("ana")
        proxy.submit_ceis(ana, [make_cei((0, 0, 5))])
        assert proxy.run().client("ana").completeness == 1.0

    def test_registry_protocol(self):
        from repro.proxy import ClientRegistry

        registry = ClientRegistry()
        registry.register("bob")
        registry.register("ana")
        assert "ana" in registry
        assert "ghost" not in registry
        assert len(registry) == 2
        assert registry.names == ["ana", "bob"]
        assert sorted(registry) == ["ana", "bob"]

    def test_registry_errors(self):
        from repro.proxy import ClientRegistry

        registry = ClientRegistry()
        registry.register("ana")
        with pytest.raises(ExperimentError, match="already registered"):
            registry.register("ana")
        with pytest.raises(ExperimentError, match="not registered"):
            registry.require("ghost")

    def test_build_profiles_pid_order_follows_sorted_names(self):
        from repro.proxy import ClientRegistry

        registry = ClientRegistry()
        registry.register("zoe")
        registry.register("ana")
        registry.submit("zoe", [make_cei((0, 0, 5))])
        registry.submit("ana", [make_cei((1, 2, 8))])
        profiles = registry.build_profiles()
        assert [p.pid for p in profiles] == [0, 1]
        assert len(profiles[0].ceis) == 1  # pid 0 == "ana"

    def test_register_client_shim_warns_and_delegates(self):
        proxy = self.make_proxy()
        with pytest.warns(DeprecationWarning, match="register_client is deprecated"):
            handle = proxy.register_client("ana")
        assert handle == "ana"
        assert "ana" in proxy.registry
