"""Unit tests for the pseudo-continuous-query language."""

import pytest

from repro.proxy.queries import (
    ContinuousQuery,
    QueryParseError,
    TimeSpan,
    WhenContains,
    WhenEvery,
    WhenPush,
    WhenUpdate,
    parse_queries,
    parse_query,
)

EXAMPLE_2 = """
q1: SELECT item AS F1
FROM feed(MishBlog)
WHEN EVERY 10 MINUTES AS T1
WITHIN T1+2 MINUTES

q2: SELECT item AS F2
FROM feed(CNNBreakingNews)
WHEN F1 CONTAINS %oil%
WITHIN T1+10 MINUTES

q3: SELECT item AS F3
FROM feed(CNNMoney.com)
WHEN F1 CONTAINS %oil%
WITHIN T1+10 MINUTES
"""

EXAMPLE_3 = """
q1: SELECT item AS F1
FROM feed(StockExchange)
WHEN ON PUSH AS T1

q2: SELECT item AS F2
FROM feed(FuturesExchange)
WITHIN T1+1 SECONDS

q3: SELECT item AS F3
FROM feed(CurrencyExchange)
WITHIN T1+1 SECONDS
"""


class TestParseQuery:
    def test_minimal_query(self):
        query = parse_query("SELECT item AS F1\nFROM feed(Blog)")
        assert query.select_field == "item"
        assert query.alias == "F1"
        assert query.source == "Blog"
        assert query.when is None and query.within is None

    def test_every_clause(self):
        query = parse_query(
            "SELECT item AS F1; FROM feed(B); WHEN EVERY 10 MINUTES AS T1"
        )
        assert query.when == WhenEvery(TimeSpan(10.0, "minute"), "T1")
        assert query.is_trigger
        assert query.trigger_label == "T1"

    def test_push_clause(self):
        query = parse_query("SELECT item AS F1; FROM feed(B); WHEN ON PUSH AS T9")
        assert query.when == WhenPush("T9")

    def test_update_clause(self):
        query = parse_query("SELECT item AS F1; FROM feed(B); WHEN ON UPDATE AS T2")
        assert query.when == WhenUpdate("T2")

    def test_contains_clause(self):
        query = parse_query(
            "SELECT item AS F2; FROM feed(B); WHEN F1 CONTAINS %oil%"
        )
        assert query.when == WhenContains("F1", "oil")
        assert not query.is_trigger

    def test_within_anchored(self):
        query = parse_query(
            "SELECT item AS F2; FROM feed(B); WITHIN T1+10 MINUTES"
        )
        assert query.within is not None
        assert query.within.anchor == "T1"
        assert query.within.span == TimeSpan(10.0, "minute")

    def test_within_plain(self):
        query = parse_query("SELECT item AS F1; FROM feed(B); WITHIN 5 CHRONONS")
        assert query.within is not None and query.within.anchor is None

    def test_case_insensitive(self):
        query = parse_query(
            "select item as f1; from FEED(B); when every 2 hours as t1"
        )
        assert isinstance(query.when, WhenEvery)
        assert query.when.period.unit == "hour"

    def test_error_on_empty(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")

    def test_error_on_missing_from(self):
        with pytest.raises(QueryParseError, match="FROM"):
            parse_query("SELECT item AS F1")

    def test_error_on_bad_select(self):
        with pytest.raises(QueryParseError, match="SELECT"):
            parse_query("GRAB item AS F1; FROM feed(B)")

    def test_error_on_duplicate_when(self):
        with pytest.raises(QueryParseError, match="duplicate WHEN"):
            parse_query(
                "SELECT item AS F1; FROM feed(B); "
                "WHEN ON PUSH AS T1; WHEN ON PUSH AS T2"
            )

    def test_error_on_unknown_clause(self):
        with pytest.raises(QueryParseError, match="unrecognized clause"):
            parse_query("SELECT item AS F1; FROM feed(B); ORDER BY time")

    def test_error_on_bad_unit(self):
        with pytest.raises(QueryParseError, match="unit"):
            parse_query("SELECT item AS F1; FROM feed(B); WITHIN 3 FORTNIGHTS")

    def test_negative_span_rejected_by_grammar(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT i AS F1; FROM feed(B); WITHIN -3 MINUTES")


class TestParseQueries:
    def test_example_two_verbatim(self):
        queries = parse_queries(EXAMPLE_2)
        assert [q.alias for q in queries] == ["F1", "F2", "F3"]
        assert queries[0].is_trigger
        assert isinstance(queries[1].when, WhenContains)
        assert queries[2].source == "CNNMoney.com"

    def test_example_three_verbatim(self):
        queries = parse_queries(EXAMPLE_3)
        assert isinstance(queries[0].when, WhenPush)
        assert queries[1].within is not None
        assert queries[1].within.span.unit == "second"

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(QueryParseError, match="duplicate"):
            parse_queries(
                "SELECT a AS F1; FROM feed(X)\n\nSELECT b AS F1; FROM feed(Y)"
            )

    def test_empty_text_rejected(self):
        with pytest.raises(QueryParseError):
            parse_queries("\n\n")


class TestDataclasses:
    def test_timespan_validation(self):
        with pytest.raises(QueryParseError):
            TimeSpan(-1.0, "minute")
        with pytest.raises(QueryParseError):
            TimeSpan(1.0, "parsec")

    def test_query_is_frozen(self):
        query = ContinuousQuery(select_field="i", alias="F1", source="B")
        with pytest.raises(AttributeError):
            query.alias = "F2"  # type: ignore[misc]
