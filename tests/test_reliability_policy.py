"""Reliability-aware scheduling: expected-gain policies and fault extensions.

Covers the :class:`ExpectedGainPolicy` wrapper (priority math, model
binding, trivial-model equivalence to the base policy), the per-EI
partial-verdict draws, the time-varying :class:`RateWindow` schedule,
the batched uniform-draw machinery (determinism, prefix stability,
cache eviction), and the injector's outage regression: a probe during a
declared outage window must not consume budget or a retry attempt.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.config import MonitorConfig
from repro.online.faults import (
    FailureModel,
    FaultInjector,
    Outage,
    RateWindow,
    RetryPolicy,
)
from repro.policies import ExpectedGainPolicy, make_policy
from repro.sim.engine import simulate
from tests.conftest import make_cei, make_ei, random_general_instance


class TestExpectedGainPriority:
    def test_no_model_matches_base(self):
        policy = ExpectedGainPolicy("S-EDF")
        ei = make_ei(0, 0, 9)
        assert policy.priority(ei, 0, None) == policy.base.priority(ei, 0, None)
        assert policy.p_success(0, 0) == 1.0

    def test_priority_divided_by_p_success(self):
        faults = FailureModel(per_resource={0: 0.5})
        retry = RetryPolicy(max_retries=1)
        policy = ExpectedGainPolicy("S-EDF", faults=faults, retry=retry)
        # p_success = 1 - 0.5**2 = 0.75 over the two allowed attempts.
        assert policy.p_success(0, 0) == pytest.approx(0.75)
        ei = make_ei(0, 0, 9)
        base = policy.base.priority(ei, 0, None)
        assert policy.priority(ei, 0, None) == base / 0.75

    def test_certain_failure_ranks_last(self):
        policy = ExpectedGainPolicy("S-EDF", faults=FailureModel(per_resource={0: 1.0}))
        assert policy.p_success(0, 0) == 0.0
        assert policy.priority(make_ei(0, 0, 9), 0, None) == math.inf

    def test_p_success_uses_full_attempt_allowance(self):
        # A failed candidate re-enters the ranking with an unchanged key,
        # so the discount must be a constant per (resource, chronon) —
        # computed from the full allowance, never the attempts remaining.
        faults = FailureModel(per_resource={0: 0.9})
        one = ExpectedGainPolicy("S-EDF", faults=faults)
        three = ExpectedGainPolicy(
            "S-EDF", faults=faults, retry=RetryPolicy(max_retries=2)
        )
        assert one.p_success(0, 0) == pytest.approx(1 - 0.9)
        assert three.p_success(0, 0) == pytest.approx(1 - 0.9**3)

    def test_rate_schedule_varies_p_success_over_time(self):
        faults = FailureModel(rate=0.2, rate_schedule=[(10, 20, 3.0)])
        policy = ExpectedGainPolicy("S-EDF", faults=faults)
        assert policy.p_success(0, 0) == pytest.approx(0.8)
        assert policy.p_success(0, 15) == pytest.approx(1 - 0.6)

    def test_p_success_array_matches_scalar(self):
        faults = FailureModel(
            rate=0.3, per_resource={2: 0.9, 5: 0.0}, rate_schedule=[(0, 4, 1.5)]
        )
        policy = ExpectedGainPolicy("MRSF", faults=faults, retry=RetryPolicy(max_retries=1))
        for chronon in (0, 7):
            arr = policy.p_success_array(chronon, 8)
            for rid in range(8):
                assert arr[rid] == policy.p_success(rid, chronon)

    def test_registry_names_and_kernels(self):
        for name in ("EG-S-EDF", "EG-MRSF", "EG-M-EDF",
                     "EG-W-S-EDF", "EG-W-MRSF", "EG-W-M-EDF"):
            policy = make_policy(name)
            assert isinstance(policy, ExpectedGainPolicy)
            assert policy.name == name
            assert policy.make_kernel() is not None

    def test_wrapping_kernel_less_base_yields_no_kernel(self):
        policy = ExpectedGainPolicy("FIFO")
        assert policy.name == "EG-FIFO"
        assert policy.make_kernel() is None


class TestModelBinding:
    def test_adopts_monitor_model(self):
        policy = ExpectedGainPolicy("MRSF")
        faults = FailureModel(rate=0.4)
        retry = RetryPolicy(max_retries=1)
        policy.bind_reliability(faults, retry)
        assert policy.faults is faults and policy.retry is retry
        assert policy.p_success(0, 0) == pytest.approx(1 - 0.4**2)

    def test_explicit_model_not_overridden(self):
        explicit = FailureModel(rate=0.9)
        policy = ExpectedGainPolicy("MRSF", faults=explicit)
        policy.bind_reliability(FailureModel(rate=0.1), RetryPolicy(max_retries=3))
        assert policy.faults is explicit
        assert policy.retry is not None  # retry was not explicit: adopted
        assert policy.p_success(0, 0) == pytest.approx(1 - 0.9**4)

    def test_binding_clears_caches(self):
        policy = ExpectedGainPolicy("MRSF", faults=FailureModel(rate=0.5))
        assert policy.p_success(0, 0) == pytest.approx(0.5)
        policy.bind_reliability(None, RetryPolicy(max_retries=1))
        assert policy.p_success(0, 0) == pytest.approx(1 - 0.5**2)


class TestExpectedGainScheduling:
    def test_prefers_reliable_resource_under_contention(self):
        # Blind S-EDF probes the more urgent EI on the flaky resource;
        # the expected-gain wrapper sees that 90% of that gain evaporates
        # and spends the budget on the reliable resource instead.
        ceis = [make_cei((0, 0, 2)), make_cei((1, 0, 5))]
        faults = FailureModel(per_resource={0: 0.9}, seed=1)

        def first_probe(policy_name):
            from repro.core.profile import ProfileSet
            from repro.online.arrivals import arrivals_from_profiles
            from repro.online.monitor import OnlineMonitor

            monitor = OnlineMonitor(
                make_policy(policy_name),
                BudgetVector.constant(1, 6),
                config=MonitorConfig(faults=faults),
            )
            monitor.run(Epoch(6), arrivals_from_profiles(ProfileSet.from_ceis(ceis)))
            return monitor

        blind = first_probe("S-EDF")
        aware = first_probe("EG-S-EDF")
        # Blind spends chronon 0 on resource 0 (deadline 2 beats 5).
        assert 0 in {r for r, t in blind.schedule.pairs() if t == 0} or (
            blind.probes_failed > 0
        )
        # The aware policy's first *successful* capture is resource 1.
        assert 1 in aware.schedule.probes_at(0)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        base=st.sampled_from(["S-EDF", "MRSF", "M-EDF", "W-MRSF"]),
        engine=st.sampled_from(["reference", "vectorized"]),
    )
    def test_property_trivial_model_matches_base(self, seed, base, engine):
        """With a trivial failure model EG-X schedules exactly like X."""
        rng = np.random.default_rng(seed)
        profiles = random_general_instance(
            rng, num_resources=6, num_chronons=20, num_ceis=20,
            max_rank=3, max_width=4,
        )
        epoch, budget = Epoch(20), BudgetVector.constant(2, 20)
        cfg = MonitorConfig(
            engine=engine, faults=FailureModel(rate=0.0, seed=seed)
        )
        assert cfg.faults.is_trivial
        plain = simulate(profiles, epoch, budget, base, config=cfg)
        wrapped = simulate(profiles, epoch, budget, f"EG-{base}", config=cfg)
        assert wrapped.schedule.probes == plain.schedule.probes
        assert wrapped.completeness == plain.completeness


class TestPartialDrops:
    MODEL = FailureModel(rate=0.0, seed=5, partial_rate=0.5)

    def test_empty_and_degenerate_rates(self):
        assert self.MODEL.partial_drops(0, 0, 0, []) == frozenset()
        none = FailureModel(partial_rate=0.0)
        assert none.partial_drops(0, 0, 0, [1, 2, 3]) == frozenset()
        everything = FailureModel(partial_rate=1.0)
        assert everything.partial_drops(0, 0, 0, [3, 1, 2]) == frozenset({1, 2, 3})

    def test_order_independent_and_deterministic(self):
        seqs = [9, 2, 41, 17, 5, 33, 28]
        first = self.MODEL.partial_drops(3, 7, 0, seqs)
        assert first == self.MODEL.partial_drops(3, 7, 0, list(reversed(seqs)))
        again = FailureModel(rate=0.0, seed=5, partial_rate=0.5)
        assert again.partial_drops(3, 7, 0, seqs) == first

    def test_draws_vary_by_coordinates(self):
        seqs = list(range(40))
        by_coord = {
            (r, t, a): self.MODEL.partial_drops(r, t, a, seqs)
            for r in range(3) for t in range(3) for a in range(2)
        }
        assert len(set(by_coord.values())) > 1

    def test_partial_rate_validated(self):
        with pytest.raises(ModelError, match="partial"):
            FailureModel(partial_rate=1.5)

    def test_partial_rate_untrivializes_model(self):
        assert FailureModel().is_trivial
        assert not FailureModel(partial_rate=0.1).is_trivial


class TestRateSchedule:
    def test_entry_coercion_forms(self):
        model = FailureModel(
            rate=0.1,
            rate_schedule=[
                RateWindow(0, 4, 2.0),
                (5, 9, 3.0),
                ((10, 14), 0.5),
            ],
        )
        assert model.rate_schedule == (
            RateWindow(0, 4, 2.0), RateWindow(5, 9, 3.0), RateWindow(10, 14, 0.5),
        )

    def test_multipliers_compound_and_clamp(self):
        model = FailureModel(
            rate=0.4, rate_schedule=[(0, 10, 2.0), (5, 10, 2.0)]
        )
        assert model.rate_multiplier(3) == 2.0
        assert model.rate_multiplier(7) == 4.0
        assert model.rate_multiplier(11) == 1.0
        assert model.failure_rate_at(0, 3) == pytest.approx(0.8)
        assert model.failure_rate_at(0, 7) == 1.0  # 1.6 clamped
        assert model.failure_rate_at(0, 11) == pytest.approx(0.4)

    def test_zero_multiplier_suspends_random_failures(self):
        model = FailureModel(rate=1.0, rate_schedule=[(5, 6, 0.0)])
        assert model.fails(0, 4, 0) and not model.fails(0, 5, 0)

    def test_schedule_alone_keeps_model_trivial(self):
        assert FailureModel(rate=0.0, rate_schedule=[(0, 9, 5.0)]).is_trivial

    def test_window_validation(self):
        with pytest.raises(ModelError, match="rate window"):
            RateWindow(5, 2, 1.0)
        with pytest.raises(ModelError, match="multiplier"):
            RateWindow(0, 5, -0.5)

    def test_window_finish_boundary_is_inclusive_not_beyond(self):
        # Regression guard: a window ending at chronon t applies AT t
        # (finish is inclusive, matching EI windows) but must not leak
        # into t + 1 — an off-by-one here silently doubles failure rates
        # for one extra chronon per storm window.
        window = RateWindow(2, 7, 3.0)
        assert window.covers(7)
        assert not window.covers(8)
        model = FailureModel(rate=0.2, rate_schedule=[window])
        assert model.rate_multiplier(7) == 3.0
        assert model.rate_multiplier(8) == 1.0
        assert model.failure_rate_at(0, 7) == pytest.approx(0.6)
        assert model.failure_rate_at(0, 8) == pytest.approx(0.2)
        # Start boundary mirrors the rule: applies at start, not before.
        assert model.rate_multiplier(1) == 1.0
        assert model.rate_multiplier(2) == 3.0


class TestBatchedDraws:
    def test_matches_itself_across_instances(self):
        a = FailureModel(rate=0.5, seed=21)
        b = FailureModel(rate=0.5, seed=21)
        coords = [(r, t, k) for r in range(10) for t in range(12) for k in range(3)]
        assert [a.fails(*c) for c in coords] == [b.fails(*c) for c in coords]

    def test_prefix_stable_when_resource_width_grows(self):
        model = FailureModel(rate=0.5, seed=22)
        before = [model.fails(r, 0, 0) for r in range(10)]
        model.fails(1000, 0, 0)  # forces the block to widen past 64
        assert [model.fails(r, 0, 0) for r in range(10)] == before

    def test_stable_across_cache_eviction(self):
        model = FailureModel(rate=0.5, seed=23)
        before = [model.fails(r, 0, 0) for r in range(10)]
        for chronon in range(1, 20):  # evicts chronon 0 (cache keeps 8)
            model.fails(0, chronon, 0)
        assert [model.fails(r, 0, 0) for r in range(10)] == before

    def test_attempts_beyond_cap_fall_back_to_scalar(self):
        model = FailureModel(rate=0.5, seed=24)
        legacy = FailureModel(rate=0.5, seed=24, per_attempt_draws=True)
        # At and beyond the cap both schemes serve the identical scalar draw.
        for attempt in (8, 9, 20):
            for r in range(4):
                assert model.fails(r, 3, attempt) == legacy.fails(r, 3, attempt)

    def test_legacy_scheme_is_a_different_universe(self):
        batched = FailureModel(rate=0.5, seed=25)
        legacy = FailureModel(rate=0.5, seed=25, per_attempt_draws=True)
        coords = [(r, t, 0) for r in range(20) for t in range(20)]
        assert [batched.fails(*c) for c in coords] != [legacy.fails(*c) for c in coords]


class TestOutageInjector:
    def test_outage_does_not_consume_attempts_or_budget(self):
        """Regression: a probe during a declared outage used to burn a
        retry attempt (and its budget) even though the verdict was known
        in advance.  The injector now reports the resource as blocked."""
        model = FailureModel(outages=(Outage(resource=0, start=2, finish=4),))
        injector = FaultInjector(model, RetryPolicy(max_retries=1))
        injector.begin_chronon(2)
        assert injector.blocked(0, 2)
        assert not injector.available(0, 2)
        assert injector.attempts_used(0) == 0
        assert injector.stats.attempts == 0
        # Other resources are unaffected, and the window closes cleanly.
        assert injector.available(1, 2)
        injector.begin_chronon(5)
        assert injector.available(0, 5)
        assert injector.attempt(0, 5)
        assert injector.stats.attempts == 1 and injector.stats.failures == 0

    def test_monitor_skips_outage_without_spending(self):
        from repro.core.profile import ProfileSet
        from repro.online.arrivals import arrivals_from_profiles
        from repro.online.monitor import OnlineMonitor

        faults = FailureModel(outages=(Outage(resource=0, start=0, finish=3),))
        monitor = OnlineMonitor(
            make_policy("S-EDF"),
            BudgetVector.constant(1, 8),
            config=MonitorConfig(faults=faults, retry=RetryPolicy(max_retries=2)),
        )
        monitor.run(
            Epoch(8),
            arrivals_from_profiles(ProfileSet.from_ceis([make_cei((0, 0, 7))])),
        )
        for chronon in range(0, 4):
            assert monitor.budget_consumed_at(chronon) == 0.0
        assert monitor.probes_failed == 0
        assert monitor.schedule.is_probed(0, 4)

    def test_failures_by_resource_counted(self):
        model = FailureModel(script=[(0, 0), (0, 1), (2, 0)])
        injector = FaultInjector(model)
        injector.begin_chronon(0)
        injector.attempt(0, 0)
        injector.attempt(1, 0)
        injector.attempt(2, 0)
        injector.begin_chronon(1)
        injector.attempt(0, 1)
        assert injector.stats.failures_by_resource == {0: 2, 2: 1}
        assert injector.stats.failures == 3
