"""Unit tests for resources and resource pools."""

import pytest

from repro.core.errors import ModelError
from repro.core.resource import Resource, ResourcePool


class TestResource:
    def test_default_name(self):
        assert Resource(rid=3).name == "r3"

    def test_explicit_name_kept(self):
        assert Resource(rid=3, name="cnn").name == "cnn"

    def test_negative_id_rejected(self):
        with pytest.raises(ModelError):
            Resource(rid=-1)

    def test_zero_cost_rejected(self):
        with pytest.raises(ModelError):
            Resource(rid=0, probe_cost=0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ModelError):
            Resource(rid=0, probe_cost=-2.0)

    def test_push_flag_defaults_off(self):
        assert not Resource(rid=0).push_enabled


class TestResourcePool:
    def test_uniform_creates_dense_ids(self):
        pool = ResourcePool.uniform(4)
        assert [r.rid for r in pool] == [0, 1, 2, 3]

    def test_uniform_rejects_zero(self):
        with pytest.raises(ModelError):
            ResourcePool.uniform(0)

    def test_from_names(self):
        pool = ResourcePool.from_names(["a", "b"])
        assert pool.by_name("b").rid == 1

    def test_from_names_rejects_empty(self):
        with pytest.raises(ModelError):
            ResourcePool.from_names([])

    def test_non_dense_ids_rejected(self):
        with pytest.raises(ModelError):
            ResourcePool([Resource(rid=1)])

    def test_getitem(self):
        pool = ResourcePool.uniform(3)
        assert pool[2].rid == 2

    def test_getitem_out_of_range(self):
        with pytest.raises(ModelError):
            ResourcePool.uniform(3)[3]

    def test_contains(self):
        pool = ResourcePool.uniform(3)
        assert 2 in pool
        assert 3 not in pool
        assert "x" not in pool

    def test_probe_cost_lookup(self):
        pool = ResourcePool.uniform(2, probe_cost=2.5)
        assert pool.probe_cost(1) == 2.5

    def test_by_name_missing(self):
        with pytest.raises(ModelError):
            ResourcePool.uniform(2).by_name("nope")

    def test_ids_range(self):
        assert list(ResourcePool.uniform(3).ids) == [0, 1, 2]
