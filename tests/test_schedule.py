"""Unit tests for schedules, budget vectors and capture indicators."""

import pytest

from repro.core.errors import BudgetError, ModelError, ScheduleError
from repro.core.intervals import ComplexExecutionInterval, Semantics
from repro.core.resource import Resource, ResourcePool
from repro.core.schedule import (
    BudgetVector,
    Schedule,
    count_feasible_schedules,
    probes_remaining,
    schedule_from_matrix,
)
from repro.core.timebase import Epoch
from tests.conftest import make_cei, make_ei


class TestBudgetVector:
    def test_constant_broadcast(self):
        budget = BudgetVector.constant(2, 5)
        assert len(budget) == 5
        assert all(budget.at(j) == 2 for j in range(5))

    def test_from_sequence(self):
        budget = BudgetVector.from_sequence([1, 2, 3])
        assert budget.at(1) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            BudgetVector.from_sequence([])

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            BudgetVector.from_sequence([1, -1])

    def test_zero_length_constant_rejected(self):
        with pytest.raises(ModelError):
            BudgetVector.constant(1, 0)

    def test_at_out_of_range(self):
        with pytest.raises(ModelError):
            BudgetVector.constant(1, 3).at(3)

    def test_maximum(self):
        assert BudgetVector.from_sequence([1, 5, 2]).maximum == 5

    def test_total(self):
        assert BudgetVector.from_sequence([1, 5, 2]).total == 8


class TestSchedule:
    def test_add_probe_and_query(self):
        s = Schedule()
        assert s.add_probe(3, 7)
        assert s.is_probed(3, 7)
        assert not s.is_probed(3, 8)

    def test_duplicate_probe_reports_false(self):
        s = Schedule()
        s.add_probe(3, 7)
        assert not s.add_probe(3, 7)
        assert s.num_probes == 1

    def test_negative_values_rejected(self):
        s = Schedule()
        with pytest.raises(ScheduleError):
            s.add_probe(-1, 0)
        with pytest.raises(ScheduleError):
            s.add_probe(0, -1)

    def test_probes_at_empty(self):
        assert Schedule().probes_at(3) == frozenset()

    def test_from_pairs_and_pairs_roundtrip(self):
        pairs = [(1, 0), (0, 2), (2, 2)]
        s = Schedule.from_pairs(pairs)
        assert list(s.pairs()) == [(1, 0), (0, 2), (2, 2)]

    def test_chronons_sorted(self):
        s = Schedule.from_pairs([(0, 5), (0, 1), (0, 3)])
        assert list(s.chronons()) == [1, 3, 5]

    def test_feasible_within_budget(self):
        s = Schedule.from_pairs([(0, 0), (1, 0), (2, 1)])
        s.check_feasible(BudgetVector.constant(2, 3))

    def test_budget_violation_raises(self):
        s = Schedule.from_pairs([(0, 0), (1, 0), (2, 0)])
        with pytest.raises(BudgetError):
            s.check_feasible(BudgetVector.constant(2, 3))

    def test_probe_beyond_budget_horizon(self):
        s = Schedule.from_pairs([(0, 5)])
        with pytest.raises(BudgetError):
            s.check_feasible(BudgetVector.constant(1, 3))

    def test_probe_outside_epoch(self):
        s = Schedule.from_pairs([(0, 5)])
        with pytest.raises(ScheduleError):
            s.check_feasible(BudgetVector.constant(1, 10), epoch=Epoch(4))

    def test_heterogeneous_costs(self):
        pool = ResourcePool([Resource(rid=0, probe_cost=3.0), Resource(rid=1)])
        s = Schedule.from_pairs([(0, 0), (1, 0)])
        with pytest.raises(BudgetError):
            s.check_feasible(BudgetVector.constant(3, 1), pool=pool)
        s.check_feasible(BudgetVector.constant(4, 1), pool=pool)

    def test_is_feasible_boolean(self):
        s = Schedule.from_pairs([(0, 0), (1, 0)])
        assert s.is_feasible(BudgetVector.constant(2, 1))
        assert not s.is_feasible(BudgetVector.constant(1, 1))

    def test_push_probes_are_free(self):
        s = Schedule.from_pairs([(0, 0), (1, 0), (2, 0)])
        with pytest.raises(BudgetError):
            s.check_feasible(BudgetVector.constant(2, 1))
        s.check_feasible(BudgetVector.constant(2, 1), push_probes={(2, 0)})
        assert s.is_feasible(BudgetVector.constant(2, 1), push_probes={(2, 0)})

    def test_push_probes_free_with_heterogeneous_costs(self):
        pool = ResourcePool([Resource(rid=0, probe_cost=3.0), Resource(rid=1)])
        s = Schedule.from_pairs([(0, 0), (1, 0)])
        s.check_feasible(BudgetVector.constant(1, 1), pool=pool, push_probes={(0, 0)})


class TestCaptureIndicators:
    def test_captures_ei_inside_window(self):
        s = Schedule.from_pairs([(0, 5)])
        assert s.captures_ei(make_ei(0, 3, 7))

    def test_misses_other_resource(self):
        s = Schedule.from_pairs([(1, 5)])
        assert not s.captures_ei(make_ei(0, 3, 7))

    def test_misses_outside_window(self):
        s = Schedule.from_pairs([(0, 8)])
        assert not s.captures_ei(make_ei(0, 3, 7))

    def test_true_window_scoring(self):
        # Probe lands in the scheduling window but the true event moved.
        ei = make_ei(0, 3, 7, true_start=10, true_finish=12)
        s = Schedule.from_pairs([(0, 5)])
        assert not s.captures_ei(ei, use_true_window=True)
        assert s.captures_ei(ei, use_true_window=False)

    def test_captures_cei_and_semantics(self):
        c = make_cei((0, 0, 2), (1, 4, 6))
        assert Schedule.from_pairs([(0, 1), (1, 5)]).captures_cei(c)
        assert not Schedule.from_pairs([(0, 1)]).captures_cei(c)

    def test_captures_cei_any_semantics(self):
        c = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 2), make_ei(1, 4, 6)), semantics=Semantics.ANY
        )
        assert Schedule.from_pairs([(1, 5)]).captures_cei(c)

    def test_large_schedule_small_window_path(self):
        # Exercise the branch iterating window chronons.
        s = Schedule.from_pairs([(0, j) for j in range(0, 100, 2)])
        assert s.captures_ei(make_ei(0, 49, 50))
        assert not s.captures_ei(make_ei(1, 49, 50))

    def test_missing_true_window_raises_model_error(self):
        # Regression: this used to be a bare assert, which `python -O`
        # strips — the None bounds then surfaced as a TypeError in range().
        ei = make_ei(0, 3, 7)
        ei.true_start = None
        s = Schedule.from_pairs([(0, 5)])
        with pytest.raises(ModelError, match="ground-truth"):
            s.captures_ei(ei, use_true_window=True)
        assert s.captures_ei(ei, use_true_window=False)


class TestDenseConversions:
    def test_to_dense_roundtrip(self):
        s = Schedule.from_pairs([(0, 1), (2, 3)])
        dense = s.to_dense(3, 4)
        assert dense[0][1] == 1
        assert dense[2][3] == 1
        assert sum(sum(row) for row in dense) == 2
        assert schedule_from_matrix(dense).num_probes == 2

    def test_to_dense_bounds_checked(self):
        s = Schedule.from_pairs([(5, 1)])
        with pytest.raises(ScheduleError):
            s.to_dense(3, 4)
        s2 = Schedule.from_pairs([(0, 9)])
        with pytest.raises(ScheduleError):
            s2.to_dense(3, 4)

    def test_schedule_from_mapping(self):
        s = schedule_from_matrix({1: [0, 1, 0], 0: [1, 0, 0]})
        assert s.is_probed(1, 1)
        assert s.is_probed(0, 0)


class TestCounting:
    def test_probes_remaining(self):
        s = Schedule.from_pairs([(0, 0)])
        assert probes_remaining(BudgetVector.constant(3, 2), s, 0) == 2
        assert probes_remaining(BudgetVector.constant(3, 2), s, 1) == 3

    def test_probes_remaining_charges_probe_costs(self):
        # Regression: used to count probes, ignoring per-resource costs.
        pool = ResourcePool([Resource(rid=0, probe_cost=3.0), Resource(rid=1)])
        s = Schedule.from_pairs([(0, 0), (1, 0)])
        assert probes_remaining(BudgetVector.constant(5, 1), s, 0, pool=pool) == 1.0

    def test_probes_remaining_excludes_push_probes(self):
        # Regression: free push captures used to be billed as consumed.
        s = Schedule.from_pairs([(0, 0), (1, 0)])
        assert (
            probes_remaining(BudgetVector.constant(2, 1), s, 0, push_probes={(1, 0)})
            == 1.0
        )

    def test_count_feasible_schedules_matches_formula(self):
        # n=3, K=2, C=1: per chronon 1 + C(3,1) = 4 choices -> 16 total.
        assert count_feasible_schedules(3, BudgetVector.constant(1, 2)) == 16

    def test_count_feasible_schedules_budget_two(self):
        # n=3, C=2: 1 + 3 + 3 = 7 per chronon.
        assert count_feasible_schedules(3, BudgetVector.constant(2, 1)) == 7


class TestPushFeasibilityReconciliation:
    """A monitor run with pushes must reconcile with Schedule.check_feasible.

    Regression (satellite of the probe-failure PR): push captures are
    recorded in the schedule but never charged, so a run that passes the
    monitor's own check_budget_feasible could still *fail* a naive
    check_feasible rescan that bills every entry.  check_feasible now
    takes the push set to exclude.
    """

    def test_monitor_push_schedule_reconciles(self):
        from repro.core.profile import ProfileSet
        from repro.online.arrivals import arrivals_from_profiles
        from repro.online.monitor import OnlineMonitor
        from repro.policies import SEDF

        # Resource 0 pushes for free at window opening; resource 1 is
        # pulled the same chronon.  Budget 1 per chronon: the schedule
        # holds two entries at chronon 0 but only one was charged.
        pool = ResourcePool(
            [Resource(rid=0, name="r0", push_enabled=True), Resource(rid=1, name="r1")]
        )
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 3)), make_cei((1, 0, 3))])
        budget = BudgetVector.constant(1, 4)
        monitor = OnlineMonitor(SEDF(), budget, resources=pool)
        monitor.run(Epoch(4), arrivals_from_profiles(profiles))
        monitor.check_budget_feasible()  # the monitor's own accounting is fine

        assert monitor.schedule.probes_at(0) == {0, 1}
        assert not monitor.schedule.is_feasible(budget, pool)  # naive rescan balks
        monitor.schedule.check_feasible(budget, pool, push_probes=monitor.push_probes)
