"""Round-trip tests for JSON serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import ComplexExecutionInterval, Semantics
from repro.core.schedule import Schedule
from repro.core.timebase import Epoch
from repro.experiments.common import ExperimentResult
from repro.io import (
    SerializationError,
    load_json,
    profiles_from_dict,
    profiles_to_dict,
    result_from_dict,
    result_to_dict,
    save_json,
    schedule_from_dict,
    schedule_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from repro.traces.poisson import poisson_trace
from tests.conftest import make_cei, make_ei, random_general_instance


class TestTraceRoundTrip:
    def test_roundtrip(self):
        trace = poisson_trace(10, Epoch(100), 5.0, np.random.default_rng(1))
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.resources == trace.resources
        for rid in trace.resources:
            assert rebuilt.stream(rid).chronons == trace.stream(rid).chronons

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError, match="format"):
            trace_from_dict({"format": "other", "streams": {}})

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            trace_from_dict({"format": "repro/trace-bundle@1", "streams": {"x": "y"}})


class TestProfileRoundTrip:
    def test_simple_roundtrip(self):
        from repro.core.profile import ProfileSet

        original = ProfileSet.from_ceis(
            [make_cei((0, 0, 5), (1, 2, 8)), make_cei((2, 3, 3))]
        )
        rebuilt = profiles_from_dict(profiles_to_dict(original))
        assert rebuilt.num_ceis == original.num_ceis
        assert rebuilt.num_eis == original.num_eis
        assert rebuilt.rank == original.rank

    def test_true_windows_preserved(self):
        from repro.core.profile import ProfileSet

        ei = make_ei(0, 0, 4, true_start=7, true_finish=11)
        original = ProfileSet.from_ceis([ComplexExecutionInterval(eis=(ei,))])
        rebuilt = profiles_from_dict(profiles_to_dict(original))
        copy = next(rebuilt.eis())
        assert (copy.true_start, copy.true_finish) == (7, 11)

    def test_semantics_and_weights_preserved(self):
        from repro.core.profile import ProfileSet

        cei = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 1), make_ei(1, 0, 1), make_ei(2, 0, 1)),
            semantics=Semantics.AT_LEAST,
            required=2,
            weight=2.5,
        )
        rebuilt = profiles_from_dict(profiles_to_dict(ProfileSet.from_ceis([cei])))
        copy = next(rebuilt.ceis())
        assert copy.semantics is Semantics.AT_LEAST
        assert copy.required == 2
        assert copy.weight == 2.5

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_random_instances_roundtrip(self, seed):
        profiles = random_general_instance(np.random.default_rng(seed))
        rebuilt = profiles_from_dict(profiles_to_dict(profiles))
        original_shape = sorted(
            (ei.resource, ei.start, ei.finish) for ei in profiles.eis()
        )
        rebuilt_shape = sorted(
            (ei.resource, ei.start, ei.finish) for ei in rebuilt.eis()
        )
        assert rebuilt_shape == original_shape

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            profiles_from_dict({"format": "repro/profile-set@1", "profiles": [{}]})


class TestScheduleRoundTrip:
    def test_roundtrip(self):
        schedule = Schedule.from_pairs([(0, 1), (3, 7), (2, 7)])
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        assert rebuilt.probes == schedule.probes

    def test_empty_schedule(self):
        rebuilt = schedule_from_dict(schedule_to_dict(Schedule()))
        assert rebuilt.num_probes == 0


class TestResultRoundTrip:
    def test_roundtrip(self):
        result = ExperimentResult(
            experiment="demo",
            headers=["x", "y"],
            rows=[[1, 0.5], [2, 0.7]],
            notes=["note"],
        )
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.experiment == "demo"
        assert rebuilt.series("y") == [0.5, 0.7]
        assert rebuilt.notes == ["note"]


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        trace = poisson_trace(3, Epoch(50), 4.0, np.random.default_rng(2))
        path = save_json(trace_to_dict(trace), tmp_path / "trace.json")
        rebuilt = trace_from_dict(load_json(path))
        assert rebuilt.total_events == trace.total_events

    def test_load_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SerializationError):
            load_json(bad)

    def test_load_non_object(self, tmp_path):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2]")
        with pytest.raises(SerializationError):
            load_json(bad)

    def test_end_to_end_schedule_replay(self, tmp_path):
        """Save a run's schedule, reload it, and replay it faithfully."""
        from repro.core.metrics import gained_completeness
        from repro.core.profile import ProfileSet
        from repro.core.schedule import BudgetVector
        from repro.online.arrivals import arrivals_from_profiles
        from repro.online.monitor import OnlineMonitor
        from repro.policies import FollowSchedule, make_policy

        profiles = ProfileSet.from_ceis([make_cei((0, 0, 4)), make_cei((1, 2, 6))])
        epoch = Epoch(8)
        budget = BudgetVector.constant(1, 8)
        monitor = OnlineMonitor(make_policy("MRSF"), budget)
        schedule = monitor.run(epoch, arrivals_from_profiles(profiles))

        path = save_json(schedule_to_dict(schedule), tmp_path / "plan.json")
        replayed_plan = schedule_from_dict(load_json(path))
        replayer = OnlineMonitor(FollowSchedule(replayed_plan), budget)
        replayed = replayer.run(epoch, arrivals_from_profiles(
            profiles_from_dict(profiles_to_dict(profiles))
        ))
        assert gained_completeness(profiles, replayed) == gained_completeness(
            profiles, schedule
        )
