"""Tests for interactive proxy sessions (online arrivals mid-run)."""

import pytest

from repro.core.errors import ExperimentError
from repro.core.resource import ResourcePool
from repro.core.timebase import Epoch
from repro.proxy import MonitoringProxy, ProxySession
from tests.conftest import make_cei


def make_session(num_chronons=50, budget=1.0, **kwargs) -> ProxySession:
    pool = ResourcePool.uniform(5)
    return ProxySession(Epoch(num_chronons), pool, budget=budget, **kwargs)


class TestClock:
    def test_initial_state(self):
        session = make_session()
        assert session.now == 0
        assert not session.finished
        assert session.remaining == 50

    def test_advance_moves_clock(self):
        session = make_session()
        assert session.advance(10) == 10
        assert session.now == 10

    def test_advance_clamps_at_epoch_end(self):
        session = make_session(num_chronons=10)
        session.advance(100)
        assert session.finished
        assert session.remaining == 0

    def test_negative_advance_rejected(self):
        with pytest.raises(ExperimentError):
            make_session().advance(-1)

    def test_run_to_end(self):
        session = make_session(num_chronons=20)
        session.advance(5)
        session.run_to_end()
        assert session.finished


class TestSubmissions:
    def test_submission_before_start(self):
        session = make_session()
        session.registry.register("ana")
        session.submit_ceis("ana", [make_cei((0, 5, 10))])
        result = session.finish()
        assert result.client("ana").completeness == 1.0

    def test_mid_run_submission_is_captured(self):
        session = make_session()
        session.registry.register("ana")
        session.advance(20)
        session.submit_ceis("ana", [make_cei((0, 25, 30))])
        result = session.finish()
        assert result.client("ana").completeness == 1.0

    def test_stale_submission_counts_against_client(self):
        session = make_session()
        session.registry.register("ana")
        session.advance(20)
        # This CEI's window already passed; it can never be satisfied.
        session.submit_ceis("ana", [make_cei((0, 5, 10))])
        result = session.finish()
        assert result.client("ana").completeness == 0.0

    def test_partially_stale_submission(self):
        session = make_session()
        session.registry.register("ana")
        session.advance(8)
        # Window [5, 15] is still open at chronon 8 — catchable.
        session.submit_ceis("ana", [make_cei((0, 5, 15))])
        result = session.finish()
        assert result.client("ana").completeness == 1.0

    def test_submission_past_epoch_never_revealed(self):
        session = make_session(num_chronons=10)
        session.registry.register("ana")
        session.submit_ceis("ana", [make_cei((0, 50, 60))])
        result = session.finish()
        assert result.client("ana").completeness == 0.0

    def test_unregistered_client_rejected(self):
        session = make_session()
        with pytest.raises(ExperimentError):
            session.submit_ceis("ghost", [make_cei((0, 0, 5))])

    def test_duplicate_client_rejected(self):
        session = make_session()
        session.registry.register("ana")
        with pytest.raises(ExperimentError):
            session.registry.register("ana")


class TestEquivalence:
    def test_session_matches_batch_proxy_on_static_workload(self):
        """With everything submitted up front, the stepped session and the
        batch proxy must produce identical schedules."""
        pool = ResourcePool.uniform(5)
        ceis_a = [make_cei((0, 3, 8)), make_cei((1, 3, 8), (2, 10, 14))]
        ceis_b = [make_cei((3, 5, 9))]

        proxy = MonitoringProxy(Epoch(30), pool, budget=1.0, policy="MRSF")
        proxy.registry.register("ana")
        proxy.registry.register("bob")

        # Copies for the session (EIs cannot be shared between CEIs).
        from repro.io import profiles_from_dict, profiles_to_dict
        from repro.core.profile import ProfileSet

        copies = profiles_from_dict(
            profiles_to_dict(ProfileSet.from_ceis(ceis_a + ceis_b))
        )
        copied = list(copies.ceis())

        proxy.submit_ceis("ana", ceis_a)
        proxy.submit_ceis("bob", ceis_b)
        batch = proxy.run()

        session = ProxySession(Epoch(30), pool, budget=1.0, policy="MRSF")
        session.registry.register("ana")
        session.registry.register("bob")
        session.submit_ceis("ana", copied[:2])
        session.submit_ceis("bob", copied[2:])
        stepped = session.finish()

        assert stepped.schedule.probes == batch.schedule.probes
        assert stepped.completeness == batch.completeness

    def test_interleaved_advance_and_submit(self):
        session = make_session(num_chronons=40, budget=1.0)
        session.registry.register("ana")
        for start in (0, 10, 20, 30):
            session.submit_ceis("ana", [make_cei((start % 5, start + 2, start + 6))])
            session.advance(10)
        result = session.finish()
        assert result.client("ana").completeness == 1.0
        assert result.probes_used == 4


class TestSnapshot:
    def test_snapshot_progression(self):
        session = make_session(num_chronons=30)
        session.registry.register("ana")
        session.submit_ceis("ana", [make_cei((0, 2, 4)), make_cei((1, 20, 22))])
        before = session.snapshot()
        assert before["now"] == 0
        assert before["registered_ceis"] == 0  # nothing revealed yet
        session.advance(10)
        mid = session.snapshot()
        assert mid["now"] == 10
        assert mid["registered_ceis"] == 1
        assert mid["satisfied_ceis"] == 1
        session.run_to_end()
        after = session.snapshot()
        assert after["remaining"] == 0
        assert after["satisfied_ceis"] == 2
        assert after["believed_completeness"] == 1.0

    def test_snapshot_counts_failures(self):
        session = make_session(num_chronons=20, budget=1.0)
        session.registry.register("ana")
        session.submit_ceis(
            "ana", [make_cei((0, 5, 5)), make_cei((1, 5, 5))]
        )
        session.run_to_end()
        snap = session.snapshot()
        assert snap["satisfied_ceis"] == 1
        assert snap["failed_ceis"] == 1


class TestRegistryShim:
    def test_register_client_shim_warns_and_delegates(self):
        session = make_session()
        with pytest.warns(DeprecationWarning, match="register_client is deprecated"):
            handle = session.register_client("ana")
        assert handle == "ana"
        assert "ana" in session.registry
