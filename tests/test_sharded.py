"""The shared-memory sharded engine: lifecycle, churn, and fault injection.

Bit-for-bit schedule equivalence lives in
``tests/test_fastpath_equivalence.py::TestShardedEquivalence``; this
module covers everything around the hot loop:

* :class:`repro.sim.arena.SharedArenaView` — publish/attach round-trips,
  the picklable manifest, owner-side unlink, input validation;
* segment hygiene — ``/dev/shm`` holds no ``repro-shard-*`` entries
  after clean closes, double-closes, *or* a SIGKILLed worker (the leak
  regression this suite exists for);
* demotion — a killed worker or growth churn drops the run to the
  single-engine path mid-flight with the reason recorded, while
  cancel-only churn stays sharded; either way the schedule matches the
  never-sharded run exactly;
* configuration — ``MonitorConfig.shards`` validation and the
  unshardable-kernel fallback.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.core.profile import Profile, ProfileSet
from repro.core.resource import ResourcePool
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online import MonitorConfig
from repro.online.monitor import OnlineMonitor
from repro.online.sharded import ShardingStats, shardable_reason
from repro.online.streaming import StreamingMonitor
from repro.policies import make_policy
from repro.sim.arena import SHM_PREFIX, SharedArenaView, compile_arena
from tests.conftest import make_cei, random_general_instance

NUM_CHRONONS = 30
NUM_RESOURCES = 6


def shm_entries() -> list[str]:
    """Live shared-memory segments published by this engine."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir(root) if SHM_PREFIX in name]


def _profiles(seed: int, num_ceis: int = 40) -> ProfileSet:
    rng = np.random.default_rng(seed)
    return random_general_instance(
        rng,
        num_resources=NUM_RESOURCES,
        num_chronons=NUM_CHRONONS,
        num_ceis=num_ceis,
        max_rank=4,
        max_width=5,
    )


def _monitor(profiles, shards=None, policy="MRSF") -> OnlineMonitor:
    arena = compile_arena(profiles)
    return OnlineMonitor(
        policy=make_policy(policy),
        budget=BudgetVector.constant(2.0, NUM_CHRONONS),
        config=MonitorConfig(engine="vectorized", shards=shards),
        arena=arena,
    )


def _run(monitor: OnlineMonitor) -> OnlineMonitor:
    arena = monitor.pool._arena
    try:
        monitor.run(Epoch(NUM_CHRONONS), arena.arrivals)
    finally:
        monitor.close()
    return monitor


# ---------------------------------------------------------------------------
# SharedArenaView
# ---------------------------------------------------------------------------


class TestSharedArenaView:
    COLUMNS = {
        "npr_seq": np.arange(7, dtype=np.int64),
        "npr_finish_f": np.linspace(0.0, 3.0, 7),
        "np_active": np.array([True, False, True, True, False, True, True]),
        "empty": np.empty(0, dtype=np.float64),
    }

    def test_publish_attach_roundtrip(self):
        owner = SharedArenaView.publish(self.COLUMNS)
        try:
            attached = SharedArenaView.attach(owner.manifest)
            try:
                for name, column in self.COLUMNS.items():
                    np.testing.assert_array_equal(attached[name], column)
                    assert attached[name].dtype == column.dtype
            finally:
                attached.close()
        finally:
            owner.close()
        assert shm_entries() == []

    def test_attached_view_sees_owner_writes(self):
        """The point of the segment: no copies between the two sides."""
        owner = SharedArenaView.publish(self.COLUMNS)
        attached = SharedArenaView.attach(owner.manifest)
        try:
            owner["npr_finish_f"][3] = 99.5
            assert attached["npr_finish_f"][3] == 99.5
        finally:
            attached.close()
            owner.close()

    def test_manifest_is_plain_data(self):
        """Workers receive the manifest through a pipe: must pickle flat."""
        import pickle

        owner = SharedArenaView.publish(self.COLUMNS)
        try:
            clone = pickle.loads(pickle.dumps(owner.manifest))
            assert clone == owner.manifest
            assert set(clone["fields"]) == set(self.COLUMNS)
        finally:
            owner.close()

    def test_only_owner_unlinks(self):
        owner = SharedArenaView.publish(self.COLUMNS)
        attached = SharedArenaView.attach(owner.manifest)
        attached.close()
        assert shm_entries()  # reader close never unlinks
        owner.close()
        assert shm_entries() == []

    def test_close_idempotent(self):
        owner = SharedArenaView.publish(self.COLUMNS)
        owner.close()
        owner.close()
        assert shm_entries() == []

    def test_rejects_multidimensional_columns(self):
        with pytest.raises(ModelError, match="1-D"):
            SharedArenaView.publish({"bad": np.zeros((2, 3))})
        assert shm_entries() == []

    def test_garbage_collection_unlinks(self):
        """A dropped owner must not leak its segment (finalizer path)."""
        import gc

        SharedArenaView.publish(self.COLUMNS)
        gc.collect()
        assert shm_entries() == []


# ---------------------------------------------------------------------------
# Engine lifecycle and fault injection
# ---------------------------------------------------------------------------


class TestEngineLifecycle:
    def test_run_leaves_no_segments(self):
        _run(_monitor(_profiles(1), shards=3))
        assert shm_entries() == []

    def test_monitor_close_idempotent(self):
        monitor = _run(_monitor(_profiles(2), shards=2))
        monitor.close()
        monitor.close()
        assert monitor.sharding_stats.demotions == 0
        assert shm_entries() == []

    def test_close_mid_run_continues_single_engine(self):
        monitor = _monitor(_profiles(3), shards=2)
        arena = monitor.pool._arena
        arrivals = arena.arrivals
        for t in range(10):
            monitor.step(t, arrivals.get(t, ()))
        monitor.close()
        assert shm_entries() == []
        for t in range(10, NUM_CHRONONS):
            monitor.step(t, arrivals.get(t, ()))
        baseline = _run(_monitor(_profiles(3)))
        assert monitor.schedule.probes == baseline.schedule.probes

    def test_killed_worker_demotes_and_leaves_no_segments(self):
        """The leak regression: SIGKILL mid-run must not orphan the
        segment, and the run must finish (demoted) with the same
        schedule as a never-sharded run."""
        monitor = _monitor(_profiles(4), shards=3)
        arena = monitor.pool._arena
        arrivals = arena.arrivals
        victim = monitor._sharded._procs[1]
        try:
            for t in range(NUM_CHRONONS):
                if t == 8:
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.join(timeout=5.0)
                monitor.step(t, arrivals.get(t, ()))
        finally:
            monitor.close()
        stats = monitor.sharding_stats
        assert stats.demotions == 1
        assert stats.demote_reason == "shard worker died mid-run"
        baseline = _run(_monitor(_profiles(4)))
        assert monitor.schedule.probes == baseline.schedule.probes
        # Give the dead worker's mapping a beat, then check the name set.
        time.sleep(0.05)
        assert shm_entries() == []


# ---------------------------------------------------------------------------
# Configuration and fallback
# ---------------------------------------------------------------------------


class TestConfiguration:
    def test_shards_must_be_positive(self):
        with pytest.raises(ModelError, match="shards"):
            MonitorConfig(engine="vectorized", shards=0)
        with pytest.raises(ModelError, match="shards"):
            MonitorConfig(engine="vectorized", shards=-2)

    def test_requires_vectorized_engine(self):
        with pytest.raises(ModelError, match="vectorized"):
            OnlineMonitor(
                policy=make_policy("MRSF"),
                budget=BudgetVector.constant(2.0, NUM_CHRONONS),
                config=MonitorConfig(engine="reference", shards=2),
            )

    def test_requires_arena(self):
        with pytest.raises(ModelError, match="arena"):
            OnlineMonitor(
                policy=make_policy("MRSF"),
                budget=BudgetVector.constant(2.0, NUM_CHRONONS),
                config=MonitorConfig(engine="vectorized", shards=2),
            )

    def test_unshardable_kernel_falls_back_with_reason(self):
        """EXPECTED-GAIN has no batched kernel: record why, then run
        single-engine rather than failing."""
        monitor = _run(_monitor(_profiles(5), shards=2, policy="EXPECTED-GAIN"))
        stats = monitor.sharding_stats
        assert stats == ShardingStats(
            shards=2,
            demotions=1,
            demote_reason="policy has no batched score kernel",
        )
        baseline = _run(_monitor(_profiles(5), policy="EXPECTED-GAIN"))
        assert monitor.schedule.probes == baseline.schedule.probes
        assert shm_entries() == []

    def test_shardable_reason_strings(self):
        assert shardable_reason(None) == "policy has no batched score kernel"
        monitor = _monitor(_profiles(6))
        try:
            assert shardable_reason(monitor._kernel) is None
        finally:
            monitor.close()

    def test_unsharded_monitor_has_no_stats(self):
        monitor = _run(_monitor(_profiles(7)))
        assert monitor.sharding_stats is None


# ---------------------------------------------------------------------------
# Churn: ArenaPatch deltas against a live sharded pool
# ---------------------------------------------------------------------------


def _initial_ceis(seed: int, count: int = 14):
    rng = np.random.default_rng(seed)
    ceis = []
    for _ in range(count):
        width = int(rng.integers(1, 4))
        eis = []
        for _ in range(width):
            start = int(rng.integers(0, NUM_CHRONONS - 4))
            eis.append(
                (int(rng.integers(NUM_RESOURCES)), start,
                 start + int(rng.integers(3, 10)))
            )
        ceis.append(make_cei(*eis))
    return ceis


def _streaming(initial, shards=None) -> StreamingMonitor:
    arena = compile_arena(ProfileSet([Profile(pid=0, ceis=list(initial))]))
    return StreamingMonitor(
        "MRSF",
        budget=1.5,
        resources=ResourcePool.uniform(NUM_RESOURCES),
        config=MonitorConfig(engine="vectorized", shards=shards),
        arena=arena,
    )


def _fingerprint(monitor: StreamingMonitor) -> dict:
    pool = monitor.pool
    return {
        "schedule": sorted(monitor.schedule.pairs()),
        "probes_used": monitor.probes_used,
        "satisfied": pool.num_satisfied,
        "failed": pool.num_failed,
        "cancelled": pool.num_cancelled,
        "believed": monitor.believed_completeness,
    }


def _drive(monitor, cancels=(), submits=(), horizon=NUM_CHRONONS):
    """cancels: (chronon, [ceis]); submits: (chronon, [ceis])."""
    try:
        for t in range(horizon):
            for at, batch in submits:
                if at == t:
                    monitor.submit(batch)
            for at, batch in cancels:
                if at == t:
                    monitor.cancel(batch)
            monitor.advance(1)
    finally:
        monitor.close()
    return monitor


class TestChurn:
    def test_cancel_only_churn_stays_sharded(self):
        """ArenaPatch cancellations mutate the shared columns in place:
        no demotion, and the schedule matches the unsharded replay."""
        initial = _initial_ceis(11)
        cancels = [(5, [initial[2], initial[7]]), (12, [initial[0]])]
        plain = _drive(_streaming(initial), cancels=cancels)
        sharded = _drive(_streaming(initial, shards=3), cancels=cancels)
        stats = sharded.monitor.sharding_stats
        assert stats.demotions == 0, stats.demote_reason
        assert _fingerprint(sharded) == _fingerprint(plain)
        assert shm_entries() == []

    def test_growth_churn_demotes_cleanly(self):
        """A registering patch reallocates the pool's mirrors away from
        the segment: the next step detaches, records why, and the rest
        of the run is identical to the unsharded replay."""
        initial = _initial_ceis(12)
        submits = [(6, _initial_ceis(13, count=5))]
        plain = _drive(_streaming(initial), submits=submits)
        sharded = _drive(_streaming(initial, shards=2), submits=submits)
        stats = sharded.monitor.sharding_stats
        assert stats.demotions == 1
        assert stats.demote_reason == "arena churn outgrew the shared segment"
        assert _fingerprint(sharded) == _fingerprint(plain)
        assert shm_entries() == []

    def test_mixed_churn(self):
        initial = _initial_ceis(14)
        submits = [(4, _initial_ceis(15, count=4))]
        cancels = [(2, [initial[1]]), (9, [initial[5], initial[8]])]
        plain = _drive(_streaming(initial), cancels=cancels, submits=submits)
        sharded = _drive(
            _streaming(initial, shards=4), cancels=cancels, submits=submits
        )
        assert _fingerprint(sharded) == _fingerprint(plain)
        assert shm_entries() == []


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shards=st.sampled_from([2, 3]),
    cancel_at=st.integers(1, NUM_CHRONONS - 2),
    submit_at=st.integers(1, NUM_CHRONONS - 2),
    grow=st.booleans(),
)
def test_property_churn_never_diverges(seed, shards, cancel_at, submit_at, grow):
    """Random churn timelines: propagate (cancel) or demote (growth),
    the sharded replay never opens daylight against the plain one."""
    initial = _initial_ceis(seed)
    cancels = [(cancel_at, [initial[seed % len(initial)]])]
    submits = [(submit_at, _initial_ceis(seed + 1, count=3))] if grow else []
    plain = _drive(_streaming(initial), cancels=cancels, submits=submits)
    sharded = _drive(
        _streaming(initial, shards=shards), cancels=cancels, submits=submits
    )
    assert _fingerprint(sharded) == _fingerprint(plain)
    assert shm_entries() == []
