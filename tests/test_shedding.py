"""Unit tests for admission control and tiered load shedding.

Engine equivalence under shedding lives in test_fastpath_equivalence.py;
this module covers the pieces: config validation and tier mapping, the
overload detector's hysteresis and sustain count, the release/shed pool
primitives on both engines, the tier treatment semantics, and the stats
surfacing through ``simulate``/``run_suite``/``MonitoringProxy``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.intervals import ComplexExecutionInterval, Semantics
from repro.core.resource import Resource, ResourcePool
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online.arrivals import arrival_map
from repro.online.candidates import CandidatePool
from repro.online.config import MonitorConfig
from repro.online.fastpath import FastCandidatePool
from repro.online.monitor import OnlineMonitor
from repro.online.shedding import (
    TIER_BEST_EFFORT,
    TIER_HARD,
    TIER_SOFT,
    LoadShedder,
    OverloadDetector,
    SheddingConfig,
)
from repro.policies import make_policy
from repro.sim.engine import simulate
from repro.sim.runner import run_suite
from tests.conftest import make_cei, make_ei, make_profiles

AGGRESSIVE = SheddingConfig(
    overload_on=1.5, overload_off=1.1, sustain=2, target_ratio=1.0
)


class TestSheddingConfig:
    def test_defaults_validate(self):
        cfg = SheddingConfig()
        assert cfg.alpha == 0.25
        assert cfg.tiers is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"overload_on": 0.0},
            {"overload_off": -1.0},
            {"overload_on": 1.0, "overload_off": 2.0},
            {"sustain": 0},
            {"target_ratio": 0.0},
            {"soft_weight": 5.0, "hard_weight": 2.0},
            {"tiers": {1: "platinum"}},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ModelError):
            SheddingConfig(**kwargs)

    def test_tier_of_weight_thresholds(self):
        cfg = SheddingConfig(soft_weight=4.0, hard_weight=10.0)
        assert cfg.tier_of(make_cei((0, 0, 5), weight=1.0)) == TIER_BEST_EFFORT
        assert cfg.tier_of(make_cei((0, 0, 5), weight=4.0)) == TIER_SOFT
        assert cfg.tier_of(make_cei((0, 0, 5), weight=10.0)) == TIER_HARD

    def test_tier_of_explicit_map_wins(self):
        light = make_cei((0, 0, 5), weight=1.0)
        cfg = SheddingConfig(
            soft_weight=4.0, hard_weight=10.0, tiers={light.cid: TIER_HARD}
        )
        assert cfg.tier_of(light) == TIER_HARD
        assert cfg.tier_of(make_cei((0, 0, 5), weight=1.0)) == TIER_BEST_EFFORT

    def test_default_tiers_are_best_effort(self):
        cfg = SheddingConfig()
        assert cfg.tier_of(make_cei((0, 0, 5), weight=1e9)) == TIER_BEST_EFFORT


class TestOverloadDetector:
    def test_sustain_gates_entry(self):
        detector = OverloadDetector(
            SheddingConfig(alpha=1.0, overload_on=2.0, overload_off=1.0, sustain=3)
        )
        assert not detector.observe(5.0)
        assert not detector.observe(5.0)
        assert detector.observe(5.0)  # third consecutive chronon at >= on

    def test_burst_below_sustain_never_triggers(self):
        detector = OverloadDetector(
            SheddingConfig(alpha=1.0, overload_on=2.0, overload_off=1.0, sustain=3)
        )
        for __ in range(10):
            assert not detector.observe(5.0)
            assert not detector.observe(5.0)
            assert not detector.observe(0.0)  # resets the sustain count

    def test_hysteresis_band_holds_state(self):
        detector = OverloadDetector(
            SheddingConfig(alpha=1.0, overload_on=2.0, overload_off=1.0, sustain=1)
        )
        assert detector.observe(3.0)
        assert detector.observe(1.5)  # inside the band: still overloaded
        assert not detector.observe(0.5)  # below off: recovered
        assert not detector.observe(1.5)  # inside the band: still fine

    def test_ewma_smooths(self):
        detector = OverloadDetector(
            SheddingConfig(alpha=0.25, overload_on=2.0, overload_off=1.0, sustain=1)
        )
        detector.observe(0.0)  # jump-start at 0
        assert not detector.observe(4.0)  # ewma = 1.0 < on
        assert detector.ewma == pytest.approx(1.0)


def _build_pools(ceis, now=0):
    """The same CEIs registered in both pool implementations."""
    ref, fast = CandidatePool(), FastCandidatePool()
    for cei in ceis:
        ref.register(cei, now)
        fast.register(cei, now)
    return ref, fast


class TestReleasePrimitive:
    @pytest.mark.parametrize("kind", ["reference", "fast"])
    def test_release_deactivates_without_events(self, kind):
        spare = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 5), make_ei(1, 0, 5)), semantics=Semantics.ANY
        )
        ref, fast = _build_pools([spare])
        pool = ref if kind == "reference" else fast
        ei = spare.eis[0]
        assert pool.is_active(ei)
        assert pool.release_ei(ei)
        assert not pool.is_active(ei)
        assert pool.is_ei_released(ei)
        assert pool.num_active() == 1
        # Silent at expiry: close_windows never reports it.
        expired = pool.close_windows(6)
        assert ei not in expired
        # The ANY CEI is satisfiable through its other EI all along.
        assert pool.num_failed == 0

    @pytest.mark.parametrize("kind", ["reference", "fast"])
    def test_release_guards(self, kind):
        c = make_cei((0, 0, 5), (1, 0, 5))
        ref, fast = _build_pools([c])
        pool = ref if kind == "reference" else fast
        pool.capture_resource(0, 0)
        assert not pool.release_ei(c.eis[0])  # captured
        assert pool.release_ei(c.eis[1])
        assert not pool.release_ei(c.eis[1])  # already released
        stray = make_ei(0, 0, 5)
        assert not pool.release_ei(stray)  # unknown to the pool

    @pytest.mark.parametrize("kind", ["reference", "fast"])
    def test_released_pending_ei_never_activates(self, kind):
        spare = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 9), make_ei(1, 4, 9)), semantics=Semantics.ANY
        )
        ref, fast = _build_pools([spare])
        pool = ref if kind == "reference" else fast
        pending = spare.eis[1]
        assert pool.release_ei(pending)
        opened = pool.open_windows(4)
        assert pending not in opened
        assert not pool.is_active(pending)

    @pytest.mark.parametrize("kind", ["reference", "fast"])
    def test_shed_cei_fails_it(self, kind):
        c = make_cei((0, 0, 5), (1, 2, 7))
        ref, fast = _build_pools([c])
        pool = ref if kind == "reference" else fast
        assert pool.shed_cei(c)
        assert pool.num_failed == 1
        assert pool.num_active() == 0
        assert not pool.shed_cei(c)  # already closed

    @pytest.mark.parametrize("kind", ["reference", "fast"])
    def test_open_cei_objects_skips_closed(self, kind):
        a, b, c = make_cei((0, 0, 3)), make_cei((1, 0, 3)), make_cei((2, 0, 3))
        ref, fast = _build_pools([a, b, c])
        pool = ref if kind == "reference" else fast
        pool.capture_resource(0, 0)  # satisfies a
        pool.shed_cei(b)
        assert [cei.cid for cei in pool.open_cei_objects()] == [c.cid]


class TestTierTreatment:
    def _overloaded_monitor(self, ceis, shedding, budget=1.0, chronons=20):
        monitor = OnlineMonitor(
            make_policy("M-EDF"),
            BudgetVector.constant(budget, chronons),
            config=MonitorConfig(shedding=shedding),
        )
        monitor.run(Epoch(chronons), arrival_map(ceis))
        return monitor

    def test_hard_tier_never_shed(self):
        ceis = [make_cei((r, 0, 15), weight=9.0) for r in range(12)]
        cfg = SheddingConfig(
            overload_on=1.5, overload_off=1.1, sustain=2,
            target_ratio=1.0, hard_weight=9.0, soft_weight=9.0,
        )
        monitor = self._overloaded_monitor(ceis, cfg)
        stats = monitor.shedding_stats
        assert stats.overload_chronons > 0
        assert stats.shed_ceis == 0
        assert stats.released_eis == 0

    def test_best_effort_sheds_lowest_utility_per_probe_first(self):
        cheap = make_cei((0, 0, 15), weight=1.0)
        pricey = make_cei((1, 0, 15), (2, 0, 15), (3, 0, 15), weight=1.0)
        keeper = make_cei((4, 0, 15), weight=5.0)
        cfg = SheddingConfig(
            overload_on=1.2, overload_off=1.0, sustain=2, target_ratio=2.0
        )
        monitor = self._overloaded_monitor([cheap, pricey, keeper], cfg)
        shedder = monitor._shedder
        # pricey (weight 1 over 3 probes) goes before cheap (1 over 1);
        # keeper's weight 5 ranks it last and the target spares it.
        assert pricey.cid in shedder.shed_cids
        assert keeper.cid not in shedder.shed_cids

    def test_soft_tier_degrades_to_required(self):
        soft = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 15), make_ei(1, 0, 15), make_ei(2, 0, 15)),
            semantics=Semantics.AT_LEAST,
            required=1,
            weight=5.0,
        )
        filler = [make_cei((r, 0, 15), weight=1.0) for r in range(3, 9)]
        cfg = SheddingConfig(
            overload_on=1.5, overload_off=1.1, sustain=2,
            target_ratio=1.0, soft_weight=5.0,
        )
        monitor = self._overloaded_monitor([soft, *filler], cfg)
        stats = monitor.shedding_stats
        assert stats.degraded_ceis == 1
        assert stats.released_eis == 2  # down to required=1
        assert soft.cid not in monitor._shedder.shed_cids

    def test_degrade_soft_disabled(self):
        soft = ComplexExecutionInterval(
            eis=(make_ei(0, 0, 15), make_ei(1, 0, 15), make_ei(2, 0, 15)),
            semantics=Semantics.AT_LEAST,
            required=1,
            weight=5.0,
        )
        filler = [make_cei((r, 0, 15), weight=1.0) for r in range(3, 9)]
        cfg = SheddingConfig(
            overload_on=1.5, overload_off=1.1, sustain=2,
            target_ratio=1.0, soft_weight=5.0, degrade_soft=False,
        )
        monitor = self._overloaded_monitor([soft, *filler], cfg)
        stats = monitor.shedding_stats
        assert stats.degraded_ceis == 0
        assert stats.released_eis == 0

    def test_admission_reject_counted_on_arrival_chronon_shed(self):
        # A wave big enough that the arrival chronon itself sheds.
        wave = [make_cei((r, 5, 18), weight=1.0) for r in range(10)]
        warmup = [make_cei((r + 10, 0, 18), weight=1.0) for r in range(6)]
        cfg = SheddingConfig(
            alpha=1.0, overload_on=1.5, overload_off=1.1, sustain=1,
            target_ratio=1.0,
        )
        monitor = self._overloaded_monitor(warmup + wave, cfg)
        stats = monitor.shedding_stats
        assert stats.admission_rejects > 0
        assert stats.admission_rejects <= stats.shed_ceis


class TestStatsSurfacing:
    def _profiles(self):
        return make_profiles(
            *[make_cei((r % 6, 0, 12), (r % 6, 5, 19), weight=1.0) for r in range(14)]
        )

    def test_simulate_carries_stats(self):
        epoch = Epoch(20)
        result = simulate(
            self._profiles(), epoch, BudgetVector.constant(1.0, 20), "M-EDF",
            config=MonitorConfig(shedding=AGGRESSIVE),
        )
        assert result.shedding is not None
        assert result.shedding.overload_chronons > 0
        plain = simulate(
            self._profiles(), epoch, BudgetVector.constant(1.0, 20), "M-EDF",
        )
        assert plain.shedding is None

    @pytest.mark.parametrize("workers", [None, 2])
    def test_run_suite_aggregates_shed_means(self, workers):
        def factory(rng: np.random.Generator):
            ceis = [
                make_cei(
                    (int(rng.integers(0, 5)), 0, 12),
                    (int(rng.integers(0, 5)), 4, 18),
                )
                for __ in range(14)
            ]
            return make_profiles(*ceis)

        aggregates = run_suite(
            factory,
            Epoch(20),
            BudgetVector.constant(1.0, 20),
            [("M-EDF", True)],
            repetitions=2,
            seed=3,
            config=MonitorConfig(shedding=AGGRESSIVE, workers=workers),
        )
        agg = aggregates["M-EDF(P)"]
        assert agg.shed_ceis_mean > 0
        assert agg.overload_chronons_mean > 0
        assert agg.shed_weight_mean > 0

    def test_proxy_carries_stats(self):
        epoch = Epoch(20)
        resources = ResourcePool(
            [Resource(rid=i, name=f"r{i}") for i in range(6)]
        )
        from repro.proxy.proxy import MonitoringProxy

        proxy = MonitoringProxy(
            epoch, resources, budget=1.0, policy="M-EDF",
            config=MonitorConfig(shedding=AGGRESSIVE),
        )
        proxy.registry.register("c")
        proxy.submit_ceis(
            "c", [make_cei((r % 6, 0, 12), (r % 6, 5, 19)) for r in range(14)]
        )
        result = proxy.run()
        assert result.shedding is not None
        assert result.shedding.overload_chronons > 0

    def test_stats_as_dict_includes_tier_breakdown(self):
        epoch = Epoch(20)
        result = simulate(
            self._profiles(), epoch, BudgetVector.constant(1.0, 20), "M-EDF",
            config=MonitorConfig(shedding=AGGRESSIVE),
        )
        snapshot = result.shedding.as_dict()
        assert snapshot["shed_ceis"] == result.shedding.shed_ceis
        if result.shedding.shed_ceis:
            assert snapshot["shed_best-effort"] == result.shedding.shed_ceis


class TestBatchingGate:
    def test_shedding_disables_run_batching(self):
        """The shedder needs per-chronon ticks: run() must not batch."""
        ceis = [make_cei((0, 0, 3)), make_cei((1, 14, 18))]
        shedded = OnlineMonitor(
            make_policy("M-EDF"),
            BudgetVector.constant(1.0, 20),
            config=MonitorConfig(
                engine="auto", shedding=SheddingConfig()
            ),
        )
        shedded.run(Epoch(20), arrival_map(ceis))
        stats = shedded.dispatch_stats
        assert stats is not None and stats.idle_skipped == 0

    def test_disabled_shedding_keeps_batching(self):
        ceis = [make_cei((0, 0, 3)), make_cei((1, 14, 18))]
        plain = OnlineMonitor(
            make_policy("M-EDF"),
            BudgetVector.constant(1.0, 20),
            config=MonitorConfig(engine="auto"),
        )
        plain.run(Epoch(20), arrival_map(ceis))
        stats = plain.dispatch_stats
        assert stats is not None and stats.idle_skipped > 0
