"""Unit tests for the simulation layer: config, engine, runner, reporting."""

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.core.profile import ProfileSet
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.sim.config import PAPER_POLICIES, TABLE_I, ExperimentConfig
from repro.sim.engine import policy_label, simulate, simulate_offline
from repro.sim.reporting import ascii_table, format_value, series_table, to_csv
from repro.sim.runner import AggregateResult, child_rngs, run_suite, sweep
from tests.conftest import make_cei


def tiny_profiles() -> ProfileSet:
    return ProfileSet.from_ceis(
        [make_cei((0, 0, 2)), make_cei((1, 1, 3)), make_cei((0, 4, 6), (1, 5, 8))]
    )


class TestConfig:
    def test_defaults_match_table_one(self):
        config = ExperimentConfig()
        assert config.max_ei_length == 10
        assert config.num_resources == 1000
        assert config.num_profiles == 100
        assert config.num_chronons == 1000
        assert config.budget == 1.0
        assert config.update_intensity == 20.0
        assert config.alpha == 0.3
        assert config.beta == 0.0

    def test_table_one_has_ten_rows(self):
        assert len(TABLE_I) == 10

    def test_paper_policy_lineup(self):
        assert ("MRSF", True) in PAPER_POLICIES
        assert ("S-EDF", False) in PAPER_POLICIES

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(budget=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(num_chronons=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(max_ei_length=-1)
        with pytest.raises(ExperimentError):
            ExperimentConfig(repetitions=0)

    def test_scaled_shrinks_size_parameters(self):
        config = ExperimentConfig().scaled(0.5)
        assert config.num_resources == 500
        assert config.num_profiles == 50
        assert config.num_chronons == 500
        assert config.budget == 1.0  # shape parameter unchanged

    def test_scaled_has_floors(self):
        config = ExperimentConfig().scaled(0.001)
        assert config.num_resources >= 10
        assert config.num_chronons >= 50

    def test_scaled_validates_factor(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig().scaled(0.0)
        with pytest.raises(ExperimentError):
            ExperimentConfig().scaled(1.5)


class TestEngine:
    def test_policy_label(self):
        assert policy_label("MRSF", True) == "MRSF(P)"
        assert policy_label("S-EDF", False) == "S-EDF(NP)"

    def test_simulate_by_name(self):
        result = simulate(
            tiny_profiles(), Epoch(10), BudgetVector.constant(1, 10), "MRSF"
        )
        assert result.label == "MRSF(P)"
        assert 0.0 <= result.completeness <= 1.0

    def test_simulate_is_deterministic(self):
        def run_once():
            return simulate(
                tiny_profiles(), Epoch(10), BudgetVector.constant(1, 10), "S-EDF"
            )

        assert run_once().schedule.probes == run_once().schedule.probes

    def test_simulate_reports_runtime(self):
        result = simulate(
            tiny_profiles(), Epoch(10), BudgetVector.constant(1, 10), "M-EDF"
        )
        assert result.runtime.num_eis == 4
        assert result.runtime.total_seconds >= 0

    def test_simulate_offline_label_and_score(self):
        result = simulate_offline(
            tiny_profiles(), Epoch(10), BudgetVector.constant(1, 10)
        )
        assert result.label == "OFFLINE-LR"
        assert 0.0 <= result.completeness <= 1.0


class TestRunner:
    def test_child_rngs_independent_and_reproducible(self):
        a = child_rngs(7, 3)
        b = child_rngs(7, 3)
        assert len(a) == 3
        for gen_a, gen_b in zip(a, b):
            assert gen_a.random() == gen_b.random()

    def test_run_suite_aggregates_all_policies(self):
        def make_instance(rng: np.random.Generator) -> ProfileSet:
            return tiny_profiles()

        results = run_suite(
            make_instance,
            Epoch(10),
            BudgetVector.constant(1, 10),
            policies=[("S-EDF", True), ("MRSF", True)],
            repetitions=3,
            seed=0,
        )
        assert set(results) == {"S-EDF(P)", "MRSF(P)"}
        assert all(r.repetitions == 3 for r in results.values())

    def test_run_suite_with_offline(self):
        results = run_suite(
            lambda rng: tiny_profiles(),
            Epoch(10),
            BudgetVector.constant(1, 10),
            policies=[("S-EDF", True)],
            repetitions=2,
            include_offline=True,
        )
        assert "OFFLINE-LR" in results

    def test_aggregate_statistics(self):
        from repro.core.metrics import RuntimeStats
        from repro.sim.engine import SimulationResult
        from repro.core.schedule import Schedule
        from repro.core.metrics import evaluate_schedule

        def fake(completeness_targets):
            runs = []
            for value in completeness_targets:
                ceis = [make_cei((0, 0, 0))]
                profiles = ProfileSet.from_ceis(ceis)
                schedule = Schedule.from_pairs([(0, 0)] if value else [])
                runs.append(
                    SimulationResult(
                        label="X",
                        schedule=schedule,
                        report=evaluate_schedule(profiles, schedule),
                        runtime=RuntimeStats(0.001, 1),
                        probes_used=1,
                        believed_completeness=1.0,
                    )
                )
            return runs

        aggregate = AggregateResult.from_runs("X", fake([1, 1, 0]))
        assert aggregate.completeness_mean == pytest.approx(2 / 3)
        assert aggregate.completeness_std > 0

    def test_sweep_runs_every_point(self):
        results = sweep(
            values=[1.0, 2.0],
            make_instance_for=lambda value: (lambda rng: tiny_profiles()),
            epoch_for=lambda value: Epoch(10),
            budget_for=lambda value: BudgetVector.constant(value, 10),
            policies=[("S-EDF", True)],
            repetitions=2,
        )
        assert set(results) == {1.0, 2.0}


class TestReporting:
    def test_format_value_floats_rounded(self):
        assert format_value(0.123456, precision=3) == "0.123"

    def test_format_value_non_float(self):
        assert format_value(7) == "7"
        assert format_value("x") == "x"

    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "long_header"], [[1, 2.5], [333, 4]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_ascii_table_title(self):
        table = ascii_table(["a"], [[1]], title="My Table")
        assert table.startswith("My Table\n")

    def test_series_table(self):
        text = series_table("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
        assert "s1" in text and "s2" in text
        assert "0.400" in text

    def test_series_table_handles_short_series(self):
        text = series_table("x", [1, 2], {"s1": [0.1]})
        assert "0.100" in text

    def test_to_csv(self):
        csv = to_csv(["a", "b"], [[1, 2.0], [3, 4.5]], precision=1)
        assert csv == "a,b\n1,2.0\n3,4.5\n"
