"""Tests for trace statistics and cycle detection."""

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.core.timebase import Epoch
from repro.traces.events import EventStream, TraceBundle
from repro.traces.news import simulate_news_trace
from repro.traces.poisson import poisson_trace
from repro.traces.stats import (
    dominant_period,
    intensity_profile,
    stream_stats,
    trace_stats,
)


def stream(*chronons):
    return EventStream(resource=0, chronons=tuple(chronons))


class TestStreamStats:
    def test_regular_cadence(self):
        stats = stream_stats(stream(*range(0, 100, 10)), Epoch(100))
        assert stats.num_events == 10
        assert stats.rate == pytest.approx(0.1)
        assert stats.mean_gap == 10.0
        assert stats.gap_cv == 0.0
        assert not stats.is_bursty

    def test_bursty_stream(self):
        # Tight burst then a long silence: CV well above 1.
        stats = stream_stats(stream(0, 1, 2, 3, 99), Epoch(100))
        assert stats.gap_cv > 1.2
        assert stats.is_bursty

    def test_degenerate_streams(self):
        empty = stream_stats(stream(), Epoch(100))
        assert empty.num_events == 0
        single = stream_stats(stream(5), Epoch(100))
        assert single.gap_cv == 0.0


class TestTraceStats:
    def test_poisson_trace_characteristics(self):
        epoch = Epoch(1000)
        trace = poisson_trace(200, epoch, 20.0, np.random.default_rng(1))
        stats = trace_stats(trace, epoch)
        assert stats.num_resources == 200
        assert 0.015 < stats.mean_rate < 0.025
        # Homogeneous rates: low across-resource inequality.
        assert stats.rate_cv < 0.5
        assert not stats.is_heterogeneous

    def test_news_trace_is_heterogeneous(self):
        epoch = Epoch(1000)
        trace = simulate_news_trace(
            epoch, np.random.default_rng(2), total_events=20_000
        )
        stats = trace_stats(trace.bundle, epoch)
        assert stats.is_heterogeneous  # Zipf-skewed feed volumes

    def test_empty_bundle(self):
        stats = trace_stats(TraceBundle(), Epoch(10))
        assert stats.total_events == 0

    def test_bins_validated(self):
        with pytest.raises(TraceError):
            trace_stats(TraceBundle(), Epoch(10), bins=0)


class TestIntensityProfile:
    def test_normalized_to_mean_one(self):
        bundle = TraceBundle.from_mapping({0: list(range(0, 100, 2))})
        profile = intensity_profile(bundle, Epoch(100), bins=10)
        assert profile.mean() == pytest.approx(1.0)

    def test_concentration_visible(self):
        bundle = TraceBundle.from_mapping({0: list(range(0, 10))})
        profile = intensity_profile(bundle, Epoch(100), bins=10)
        assert profile[0] > profile[5]

    def test_empty(self):
        profile = intensity_profile(TraceBundle(), Epoch(100), bins=10)
        assert profile.sum() == 0


class TestDominantPeriod:
    def test_detects_news_diurnal_cycles(self):
        epoch = Epoch(1000)
        trace = simulate_news_trace(
            epoch, np.random.default_rng(3), total_events=20_000
        )
        cycles = dominant_period(trace.bundle, epoch)
        assert 55 <= cycles <= 65  # generator uses 60

    def test_no_cycle_in_homogeneous_trace(self):
        epoch = Epoch(1000)
        trace = poisson_trace(100, epoch, 20.0, np.random.default_rng(4))
        assert dominant_period(trace, epoch) == 0

    def test_synthetic_sine(self):
        epoch = Epoch(600)
        rng = np.random.default_rng(5)
        events = []
        for chronon in range(600):
            intensity = 1.0 + 0.9 * np.sin(2 * np.pi * 12 * chronon / 600)
            if rng.random() < intensity * 0.4:
                events.append(chronon)
        bundle = TraceBundle.from_mapping({0: events})
        assert dominant_period(bundle, epoch) == 12

    def test_empty(self):
        assert dominant_period(TraceBundle(), Epoch(100)) == 0
