"""Unit tests for the rolling-horizon driver and the unbounded budget.

Equivalence of churned runs with from-scratch compiles is covered by
tests/test_churn_equivalence.py; these tests pin the driver's local
contract: the clock, the reveal queue, cancellation semantics, budget
extension, and the snapshot surface.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ModelError
from repro.core.profile import Profile, ProfileSet
from repro.core.resource import ResourcePool
from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.online import MonitorConfig, OnlineMonitor, StreamingBudget, StreamingMonitor
from repro.online.arrivals import arrival_map
from repro.policies import make_policy
from repro.sim.arena import compile_arena
from tests.conftest import make_cei


def make_monitor(**kwargs) -> StreamingMonitor:
    defaults = dict(budget=1.0, resources=ResourcePool.uniform(4))
    defaults.update(kwargs)
    return StreamingMonitor("MRSF", **defaults)


class TestStreamingBudget:
    def test_constant_holds_forever(self):
        budget = StreamingBudget.constant(2.5)
        assert budget.at(0) == 2.5
        assert budget.at(10**9) == 2.5

    def test_vector_holds_last_value(self):
        budget = StreamingBudget.from_vector(BudgetVector.from_sequence([3, 1, 2]))
        assert [budget.at(j) for j in range(5)] == [3, 1, 2, 2, 2]

    def test_vector_cycles(self):
        budget = StreamingBudget.from_vector(
            BudgetVector.from_sequence([3, 1, 2]), cycle=True
        )
        assert [budget.at(j) for j in range(7)] == [3, 1, 2, 3, 1, 2, 3]

    def test_rejections(self):
        with pytest.raises(ModelError, match="at least one value"):
            StreamingBudget(values=())
        with pytest.raises(ModelError, match=">= 0"):
            StreamingBudget(values=(1.0, -1.0))
        with pytest.raises(ModelError, match=">= 0"):
            StreamingBudget.constant(1.0).at(-1)


class TestClockAndQueue:
    def test_initial_state(self):
        monitor = make_monitor()
        assert monitor.now == 0
        assert monitor.pending_count == 0

    def test_advance_moves_clock_without_epoch_bound(self):
        monitor = make_monitor()
        assert monitor.advance(100) == 100
        assert monitor.advance(50) == 150  # no epoch: the clock never ends

    def test_negative_advance_rejected(self):
        with pytest.raises(ModelError, match="cannot advance"):
            make_monitor().advance(-1)

    def test_submission_reveals_at_release(self):
        monitor = make_monitor()
        cei = make_cei((0, 5, 9))
        monitor.submit([cei])
        assert monitor.is_pending(cei.cid)
        monitor.advance(5)
        assert monitor.is_pending(cei.cid)  # reveals when chronon 5 executes
        monitor.advance(1)
        assert not monitor.is_pending(cei.cid)
        monitor.advance(5)
        assert monitor.pool.num_satisfied == 1

    def test_late_submission_clamps_to_now(self):
        monitor = make_monitor()
        monitor.advance(20)
        # Window long gone: registers dead-on-arrival instead of never.
        monitor.submit([make_cei((0, 2, 6))])
        monitor.advance(1)
        assert monitor.pool.num_failed == 1

    def test_believed_completeness_excludes_cancelled(self):
        monitor = make_monitor()
        # ``drop`` needs a second capture in a window that only opens at
        # chronon 20, so it is still open when the cancel lands.
        keep, drop = make_cei((0, 0, 4)), make_cei((1, 0, 30), (2, 20, 30))
        monitor.submit([keep, drop])
        monitor.advance(3)
        monitor.cancel([drop])
        monitor.advance(3)
        assert monitor.pool.num_satisfied == 1
        assert monitor.believed_completeness == 1.0


class TestCancellation:
    def test_pending_cancel_never_registers(self):
        monitor = make_monitor()
        cei = make_cei((0, 10, 15))
        monitor.submit([cei])
        withdrawn = monitor.cancel([cei])
        assert withdrawn == [cei]
        monitor.advance(20)
        assert monitor.pool.num_registered == 0

    def test_live_cancel_closes_without_failing(self):
        monitor = make_monitor(resources=ResourcePool.uniform(1), budget=0.0)
        cei = make_cei((0, 0, 10))
        monitor.submit([cei])
        monitor.advance(2)
        assert monitor.cancel([cei]) == [cei]
        assert monitor.pool.num_cancelled == 1
        assert monitor.pool.num_failed == 0
        assert monitor.pool.num_open == 0

    def test_closed_and_unknown_ceis_skipped(self):
        monitor = make_monitor()
        done = make_cei((0, 0, 3))
        monitor.submit([done])
        monitor.advance(5)
        assert monitor.pool.num_satisfied == 1
        assert monitor.cancel([done]) == []  # already satisfied
        assert monitor.cancel([make_cei((1, 0, 3))]) == []  # never submitted

    def test_double_cancel_is_idempotent(self):
        monitor = make_monitor(budget=0.0)
        cei = make_cei((0, 0, 10))
        monitor.submit([cei])
        monitor.advance(1)
        assert monitor.cancel([cei]) == [cei]
        assert monitor.cancel([cei]) == []
        assert monitor.pool.num_cancelled == 1


class TestArenaBackedDriver:
    def _arena_monitor(self, ceis, **kwargs):
        arena = compile_arena(ProfileSet([Profile(pid=0, ceis=list(ceis))]))
        return make_monitor(
            config=MonitorConfig(engine="vectorized"), arena=arena, **kwargs
        )

    def test_compiled_ceis_auto_queue(self):
        ceis = [make_cei((0, 0, 5)), make_cei((1, 3, 9))]
        monitor = self._arena_monitor(ceis)
        assert monitor.pending_count == 2
        monitor.advance(10)
        assert monitor.pool.num_satisfied == 2

    def test_submit_patches_arena_in_place(self):
        monitor = self._arena_monitor([make_cei((0, 0, 5))])
        before = monitor.arena
        monitor.advance(2)
        monitor.submit([make_cei((1, 4, 9))])
        assert monitor.arena is not before  # new generation adopted
        assert monitor.arena.n_ceis == 2
        monitor.advance(10)
        assert monitor.pool.num_satisfied == 2

    def test_compact_prunes_behind_clock(self):
        monitor = self._arena_monitor(
            [make_cei((0, 0, 5)), make_cei((1, 10, 15))], compact_every=4
        )
        monitor.advance(8)
        assert monitor.arena is not None
        assert all(t >= 8 for t in monitor.arena.activate_at)

    def test_compact_every_rejects_negative(self):
        with pytest.raises(ModelError, match="compact_every"):
            self._arena_monitor([make_cei((0, 0, 5))], compact_every=-1)

    def test_reference_engine_rejects_arena(self):
        arena = compile_arena(
            ProfileSet([Profile(pid=0, ceis=[make_cei((0, 0, 5))])])
        )
        with pytest.raises(ModelError, match="vectorized or auto"):
            make_monitor(config=MonitorConfig(engine="reference"), arena=arena)


class TestBatchEquivalence:
    def test_stepped_run_matches_batch_monitor(self):
        """Everything known up front: the streaming driver must replay
        OnlineMonitor.run bit-identically over the same horizon."""
        specs = [((0, 0, 6),), ((1, 2, 9), (2, 4, 12)), ((3, 5, 11),)]
        horizon = 20

        batch_ceis = [make_cei(*s) for s in specs]
        batch = OnlineMonitor(
            policy=make_policy("MRSF"),
            budget=BudgetVector.constant(1.0, horizon),
            resources=ResourcePool.uniform(4),
        )
        batch.run(Epoch(horizon), arrival_map(batch_ceis))

        streaming = make_monitor()
        streaming.submit([make_cei(*s) for s in specs])
        streaming.advance(horizon)

        assert sorted(streaming.schedule.pairs()) == sorted(batch.schedule.pairs())
        assert streaming.probes_used == batch.probes_used
        assert streaming.believed_completeness == batch.believed_completeness


class TestSnapshot:
    def test_snapshot_keys_and_counters(self):
        monitor = make_monitor()
        monitor.submit([make_cei((0, 0, 4)), make_cei((1, 10, 14))])
        monitor.advance(6)
        snap = monitor.snapshot()
        assert snap["now"] == 6
        assert snap["submitted_ceis"] == 2
        assert snap["pending_ceis"] == 1
        assert snap["satisfied_ceis"] == 1
        assert snap["probes_used"] >= 1


class TestLiveBudgetAndFastForward:
    def test_set_budget_swaps_mid_run(self):
        monitor = make_monitor(budget=0.0)
        monitor.submit([make_cei((0, 0, 9))])
        monitor.advance(3)
        assert monitor.probes_used == 0
        monitor.set_budget(1.0)
        monitor.advance(3)
        assert monitor.probes_used >= 1

    def test_set_budget_accepts_streaming_budget(self):
        monitor = make_monitor()
        monitor.set_budget(StreamingBudget(values=(2.0, 0.0), cycle=True))
        assert monitor.budget.cycle is True
        assert monitor.monitor.budget is monitor.budget

    def test_fast_forward_never_backwards(self):
        monitor = make_monitor()
        assert monitor.fast_forward(5) == 5
        with pytest.raises(ModelError, match="backwards"):
            monitor.fast_forward(2)

    def test_coerce_budget_spellings(self):
        from repro.core.schedule import BudgetVector
        from repro.online.streaming import coerce_budget

        assert coerce_budget(2).values == (2.0,)
        vector = BudgetVector.constant(1.5, 4)
        assert coerce_budget(vector).values == vector.values
        budget = StreamingBudget.constant(3.0)
        assert coerce_budget(budget) is budget
