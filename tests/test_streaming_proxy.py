"""Tests for the always-on proxy facade and its HTTP front end.

The in-process surface (clients, churn, clocks, stats, snapshots) is
exercised directly; the HTTP layer is driven end to end against the
dependency-free ``http.server`` endpoint on a loopback port, which is
exactly what the CI service-smoke job does.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.core.errors import ExperimentError
from repro.core.resource import ResourcePool
from repro.online import MonitorConfig
from repro.proxy import ClientHandle, StreamingProxy
from repro.proxy.service import create_app, serve
from tests.conftest import make_cei


def make_proxy(**kwargs) -> StreamingProxy:
    defaults = dict(resources=ResourcePool.uniform(4), budget=1.0, policy="MRSF")
    defaults.update(kwargs)
    return StreamingProxy(**defaults)


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestClientsAndChurn:
    def test_register_returns_handle(self):
        proxy = make_proxy()
        handle = proxy.register_client("ana")
        assert isinstance(handle, ClientHandle)
        assert proxy.client_names == ["ana"]

    def test_submit_requires_registration(self):
        with pytest.raises(ExperimentError, match="not registered"):
            make_proxy().submit_ceis("ghost", [make_cei((0, 0, 5))])

    def test_submit_and_satisfy(self):
        proxy = make_proxy()
        proxy.register_client("ana")
        assert proxy.submit_ceis("ana", [make_cei((0, 0, 5))]) == 1
        proxy.tick(8)
        stats = proxy.client_stats("ana")
        assert stats["satisfied_ceis"] == 1
        assert stats["believed_completeness"] == 1.0

    def test_cancel_all_open_of_client(self):
        proxy = make_proxy()
        proxy.register_client("ana")
        proxy.submit_ceis(
            "ana", [make_cei((0, 0, 30), (1, 20, 30)), make_cei((2, 5, 30), (3, 20, 30))]
        )
        proxy.tick(3)
        assert proxy.cancel_ceis("ana") == 2
        stats = proxy.client_stats("ana")
        assert stats["cancelled_ceis"] == 2
        assert stats["open_ceis"] == 0

    def test_cancel_foreign_cei_rejected(self):
        proxy = make_proxy()
        proxy.register_client("ana")
        proxy.register_client("bob")
        cei = make_cei((0, 0, 30), (1, 20, 30))
        proxy.submit_ceis("ana", [cei])
        with pytest.raises(ExperimentError, match="belongs to client 'ana'"):
            proxy.cancel_ceis("bob", [cei])
        with pytest.raises(ExperimentError, match="never submitted"):
            proxy.cancel_ceis("bob", [make_cei((0, 0, 5))])

    def test_cancel_of_satisfied_cei_is_a_noop(self):
        proxy = make_proxy()
        proxy.register_client("ana")
        cei = make_cei((0, 0, 4))
        proxy.submit_ceis("ana", [cei])
        proxy.tick(6)
        assert proxy.cancel_ceis("ana", [cei]) == 0
        assert proxy.client_stats("ana")["satisfied_ceis"] == 1

    def test_pending_ceis_counted(self):
        proxy = make_proxy()
        proxy.register_client("ana")
        proxy.submit_ceis("ana", [make_cei((0, 10, 15))])
        assert proxy.client_stats("ana")["pending_ceis"] == 1
        # Pending needs are excluded from the completeness denominator.
        assert proxy.client_stats("ana")["believed_completeness"] == 1.0


class TestClocks:
    def test_manual_tick(self):
        proxy = make_proxy()
        assert proxy.now == 0
        assert proxy.tick(7) == 7

    def test_background_clock(self):
        proxy = make_proxy()
        proxy.start(interval=0.01)
        assert proxy.running
        with pytest.raises(ExperimentError, match="already running"):
            proxy.start(interval=0.01)
        deadline = threading.Event()
        for _ in range(200):
            if proxy.now >= 2:
                break
            deadline.wait(0.01)
        proxy.stop()
        assert not proxy.running
        assert proxy.now >= 2

    def test_async_clock(self):
        import asyncio

        proxy = make_proxy()
        assert asyncio.run(proxy.run_async(5)) == 5
        assert proxy.now == 5


class TestStats:
    def test_global_stats(self):
        proxy = make_proxy()
        proxy.register_client("ana")
        proxy.submit_ceis("ana", [make_cei((0, 0, 5))])
        proxy.tick(3)
        stats = proxy.stats()
        assert stats["clients"] == 1
        assert stats["now"] == 3
        assert stats["submitted_ceis"] == 1

    def test_stats_for_unknown_client_rejected(self):
        with pytest.raises(ExperimentError, match="not registered"):
            make_proxy().client_stats("ghost")


class TestSnapshotRestore:
    def test_roundtrip_through_json(self):
        proxy = make_proxy()
        proxy.register_client("ana")
        proxy.register_client("bob")
        proxy.submit_ceis("ana", [make_cei((0, 0, 5)), make_cei((1, 10, 30))])
        victim = make_cei((2, 0, 30), (3, 25, 30))
        proxy.submit_ceis("bob", [victim])
        proxy.tick(6)
        proxy.cancel_ceis("bob", [victim])

        payload = json.loads(json.dumps(proxy.snapshot()))
        restored = StreamingProxy.restore(
            payload, resources=ResourcePool.uniform(4), budget=1.0
        )
        assert restored.now == proxy.now
        assert restored.client_names == ["ana", "bob"]
        assert restored.client_stats("bob")["cancelled_ceis"] == 1
        # ana's first need was satisfied pre-snapshot; only durable state
        # survives, so after restore it registers dead-on-arrival instead.
        stats = restored.client_stats("ana")
        assert stats["submitted_ceis"] == 2
        assert stats["pending_ceis"] == 2  # nothing reveals until the next tick
        restored.tick(1)
        stats = restored.client_stats("ana")
        assert stats["failed_ceis"] == 1  # the [0, 5] window is behind the clock
        assert stats["pending_ceis"] == 1  # the (1, 10, 30) need, ahead of now

    def test_bad_format_rejected(self):
        with pytest.raises(ExperimentError, match="not a streaming-proxy"):
            StreamingProxy.restore({"format": "something-else"})


class TestHttpService:
    def test_endpoints_end_to_end(self):
        proxy = make_proxy()
        proxy.register_client("ana")
        proxy.submit_ceis("ana", [make_cei((0, 0, 5))])
        proxy.tick(3)
        service = serve(proxy)
        try:
            status, health = _get(f"{service.url}/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["now"] == 3
            assert health["clients"] == 1

            status, stats = _get(f"{service.url}/stats")
            assert status == 200
            assert stats["submitted_ceis"] == 1

            status, client = _get(f"{service.url}/clients/ana/stats")
            assert status == 200
            assert client["client"] == "ana"

            status, error = _get(f"{service.url}/clients/ghost/stats")
            assert status == 404
            assert "not registered" in error["error"]

            status, error = _get(f"{service.url}/no/such/route")
            assert status == 404
        finally:
            service.shutdown()

    def test_create_app_without_fastapi(self):
        try:
            import fastapi  # noqa: F401
        except ImportError:
            with pytest.raises(ExperimentError, match="fastapi is not installed"):
                create_app(make_proxy())
        else:  # pragma: no cover - only on stacks that ship fastapi
            app = create_app(make_proxy())
            assert app is not None


class TestLiveControls:
    def test_set_budget_takes_effect_next_tick(self):
        proxy = make_proxy(budget=0.0)
        proxy.register_client("ana")
        proxy.submit_ceis("ana", [make_cei((0, 0, 9))])
        proxy.tick(2)
        assert proxy.stats()["probes_used"] == 0
        proxy.set_budget(2.0)
        proxy.tick(2)
        assert proxy.stats()["probes_used"] >= 1

    def test_fast_forward_to_absolute_chronon(self):
        proxy = make_proxy()
        proxy.tick(3)
        assert proxy.fast_forward(7) == 7
        assert proxy.fast_forward(7) == 7  # no-op at the target
        with pytest.raises(Exception, match="backwards"):
            proxy.fast_forward(4)

    def test_unregister_withdraws_and_forgets(self):
        proxy = make_proxy()
        ana = proxy.register_client("ana")
        proxy.register_client("bob")
        proxy.submit_ceis(ana, [make_cei((0, 5, 20)), make_cei((1, 8, 25))])
        proxy.tick(1)
        withdrawn = proxy.unregister_client(ana)
        assert withdrawn == 2
        assert proxy.client_names == ["bob"]
        with pytest.raises(ExperimentError, match="not registered"):
            proxy.client_stats("ana")
        assert proxy.stats()["clients"] == 1
        # The name is reusable after unregistration.
        proxy.register_client("ana")
        assert proxy.client_stats("ana")["submitted_ceis"] == 0

    def test_unregister_unknown_client_is_an_error(self):
        with pytest.raises(ExperimentError, match="not registered"):
            make_proxy().unregister_client("ghost")


class TestHealthzBreakers:
    def test_plain_proxy_healthz_reports_breakers(self):
        proxy = make_proxy()
        service = serve(proxy)
        try:
            status, health = _get(f"{service.url}/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["breakers"] == {
                "opens": 0, "reopens": 0, "closes": 0, "short_circuited": 0,
            }
            # The plain (non-durable) shape has no durability section.
            assert "durability" not in health
            assert "wal_lag" not in health
        finally:
            service.shutdown()
