"""Unit tests for profile templates (EI builders, crossings, arbitrage)."""

import pytest

from repro.core.errors import WorkloadError
from repro.core.timebase import Epoch
from repro.traces.noise import PredictedEvent
from repro.workloads.templates import (
    LengthKind,
    LengthRule,
    arbitrage_ceis,
    build_ei,
    crossing_ceis,
    periodic_ceis,
)


def events(*pairs) -> list[PredictedEvent]:
    """Build predicted events from (true, predicted) pairs or ints."""
    out = []
    for pair in pairs:
        if isinstance(pair, tuple):
            out.append(PredictedEvent(true_chronon=pair[0], predicted_chronon=pair[1]))
        else:
            out.append(PredictedEvent(true_chronon=pair, predicted_chronon=pair))
    return out


class TestLengthRule:
    def test_window_factory(self):
        rule = LengthRule.window(5)
        assert rule.kind is LengthKind.WINDOW and rule.w == 5

    def test_overwrite_factory(self):
        assert LengthRule.overwrite().kind is LengthKind.OVERWRITE

    def test_negative_window_rejected(self):
        with pytest.raises(WorkloadError):
            LengthRule.window(-1)


class TestBuildEI:
    def test_window_rule(self):
        ei = build_ei(0, events(10), 0, LengthRule.window(5), Epoch(100))
        assert (ei.start, ei.finish) == (10, 15)
        assert (ei.true_start, ei.true_finish) == (10, 15)

    def test_window_zero_is_unit(self):
        ei = build_ei(0, events(10), 0, LengthRule.window(0), Epoch(100))
        assert ei.is_unit

    def test_window_clamped_to_epoch(self):
        ei = build_ei(0, events(98), 0, LengthRule.window(5), Epoch(100))
        assert ei.finish == 99

    def test_overwrite_rule_until_next_event(self):
        ei = build_ei(0, events(10, 25), 0, LengthRule.overwrite(), Epoch(100))
        assert (ei.start, ei.finish) == (10, 24)

    def test_overwrite_last_event_until_epoch_end(self):
        ei = build_ei(0, events(10), 0, LengthRule.overwrite(), Epoch(100))
        assert ei.finish == 99

    def test_noisy_prediction_separates_windows(self):
        ei = build_ei(0, events((10, 14)), 0, LengthRule.window(3), Epoch(100))
        assert (ei.start, ei.finish) == (14, 17)
        assert (ei.true_start, ei.true_finish) == (10, 13)

    def test_overwrite_with_reordered_predictions_stays_valid(self):
        # Noise put the second prediction before the first.
        ei = build_ei(
            0, events((10, 20), (15, 12)), 0, LengthRule.overwrite(), Epoch(100)
        )
        assert ei.start <= ei.finish
        assert ei.true_start <= ei.true_finish

    def test_index_out_of_range(self):
        with pytest.raises(WorkloadError):
            build_ei(0, events(10), 1, LengthRule.window(0), Epoch(100))


class TestCrossing:
    def test_cei_count_is_min_event_count(self):
        predictions = {0: events(1, 5, 9), 1: events(2, 6)}
        ceis = crossing_ceis([0, 1], predictions, LengthRule.window(0), Epoch(20))
        assert len(ceis) == 2

    def test_jth_cei_crosses_jth_events(self):
        predictions = {0: events(1, 5), 1: events(2, 6)}
        ceis = crossing_ceis([0, 1], predictions, LengthRule.window(0), Epoch(20))
        assert [(ei.resource, ei.start) for ei in ceis[1].eis] == [(0, 5), (1, 6)]

    def test_max_ceis_cap(self):
        predictions = {0: events(*range(10))}
        ceis = crossing_ceis([0], predictions, LengthRule.window(0), Epoch(20), max_ceis=3)
        assert len(ceis) == 3

    def test_weight_propagates(self):
        predictions = {0: events(1)}
        ceis = crossing_ceis(
            [0], predictions, LengthRule.window(0), Epoch(20), weight=2.0
        )
        assert ceis[0].weight == 2.0

    def test_empty_resources_rejected(self):
        with pytest.raises(WorkloadError):
            crossing_ceis([], {}, LengthRule.window(0), Epoch(20))

    def test_unknown_resource_rejected(self):
        with pytest.raises(WorkloadError):
            crossing_ceis([9], {0: events(1)}, LengthRule.window(0), Epoch(20))


class TestArbitrage:
    def test_one_cei_per_trigger_event(self):
        predictions = {0: events(5, 50), 1: events(), 2: events()}
        ceis = arbitrage_ceis(0, [1, 2], predictions, Epoch(100), follower_slack=2)
        assert len(ceis) == 2
        assert all(c.rank == 3 for c in ceis)

    def test_followers_open_at_trigger_time(self):
        predictions = {0: events(5), 1: events()}
        (cei,) = arbitrage_ceis(0, [1], predictions, Epoch(100), follower_slack=2)
        follower = cei.eis[1]
        assert (follower.resource, follower.start, follower.finish) == (1, 5, 7)

    def test_trigger_slack(self):
        predictions = {0: events(5)}
        (cei,) = arbitrage_ceis(0, [], predictions, Epoch(100), trigger_slack=3)
        assert (cei.eis[0].start, cei.eis[0].finish) == (5, 8)

    def test_max_ceis_cap(self):
        predictions = {0: events(*range(0, 50, 5))}
        ceis = arbitrage_ceis(0, [], predictions, Epoch(100), max_ceis=4)
        assert len(ceis) == 4

    def test_unknown_trigger_rejected(self):
        with pytest.raises(WorkloadError):
            arbitrage_ceis(0, [], {}, Epoch(100))

    def test_noisy_trigger_separates_windows(self):
        predictions = {0: [PredictedEvent(true_chronon=5, predicted_chronon=9)]}
        (cei,) = arbitrage_ceis(0, [], predictions, Epoch(100), trigger_slack=1)
        assert (cei.eis[0].start, cei.eis[0].finish) == (9, 10)
        assert (cei.eis[0].true_start, cei.eis[0].true_finish) == (5, 6)


class TestPeriodic:
    def test_one_cei_per_period(self):
        ceis = periodic_ceis(0, Epoch(30), period=10, slack=2)
        assert len(ceis) == 3
        assert [c.eis[0].start for c in ceis] == [0, 10, 20]

    def test_slack_window(self):
        ceis = periodic_ceis(0, Epoch(30), period=10, slack=2)
        assert (ceis[0].eis[0].start, ceis[0].eis[0].finish) == (0, 2)

    def test_conditional_expansion_on_triggers(self):
        ceis = periodic_ceis(
            0,
            Epoch(30),
            period=10,
            slack=2,
            conditional=[1, 2],
            conditional_slack=5,
            trigger_chronons={10},
        )
        assert [c.rank for c in ceis] == [1, 3, 1]
        triggered = ceis[1]
        assert {ei.resource for ei in triggered.eis} == {0, 1, 2}

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            periodic_ceis(0, Epoch(30), period=0, slack=2)
        with pytest.raises(WorkloadError):
            periodic_ceis(0, Epoch(30), period=5, slack=-1)
