"""Unit tests for the discrete time model."""

import pytest

from repro.core.errors import ModelError
from repro.core.timebase import Epoch, validate_window, window_length


class TestEpoch:
    def test_length(self):
        assert len(Epoch(10)) == 10

    def test_iteration_covers_all_chronons(self):
        assert list(Epoch(4)) == [0, 1, 2, 3]

    def test_first_and_last(self):
        epoch = Epoch(7)
        assert epoch.first == 0
        assert epoch.last == 6

    def test_contains_interior(self):
        assert 3 in Epoch(5)

    def test_contains_boundaries(self):
        epoch = Epoch(5)
        assert 0 in epoch
        assert 4 in epoch

    def test_excludes_outside(self):
        epoch = Epoch(5)
        assert 5 not in epoch
        assert -1 not in epoch

    def test_excludes_non_integers(self):
        epoch = Epoch(5)
        assert 2.5 not in epoch
        assert "2" not in epoch

    def test_excludes_bool(self):
        # True == 1 numerically but is not a chronon.
        assert True not in Epoch(5)

    def test_zero_chronons_rejected(self):
        with pytest.raises(ModelError):
            Epoch(0)

    def test_negative_chronons_rejected(self):
        with pytest.raises(ModelError):
            Epoch(-3)

    def test_clamp_below(self):
        assert Epoch(10).clamp(-5) == 0

    def test_clamp_above(self):
        assert Epoch(10).clamp(99) == 9

    def test_clamp_inside_is_identity(self):
        assert Epoch(10).clamp(4) == 4

    def test_require_valid(self):
        assert Epoch(10).require(3) == 3

    def test_require_invalid_raises_with_context(self):
        with pytest.raises(ModelError, match="deadline"):
            Epoch(10).require(10, what="deadline")


class TestWindows:
    def test_validate_accepts_point_window(self):
        validate_window(3, 3)

    def test_validate_rejects_inverted(self):
        with pytest.raises(ModelError):
            validate_window(5, 4)

    def test_validate_rejects_negative(self):
        with pytest.raises(ModelError):
            validate_window(-1, 4)

    def test_window_length_point(self):
        assert window_length(4, 4) == 1

    def test_window_length_span(self):
        assert window_length(2, 9) == 8
