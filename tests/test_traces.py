"""Unit tests for event traces: streams, Poisson, auctions, news."""

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.core.timebase import Epoch
from repro.traces.auctions import simulate_auction_trace
from repro.traces.events import EventStream, TraceBundle
from repro.traces.news import simulate_news_trace
from repro.traces.poisson import poisson_trace


class TestEventStream:
    def test_sorted_required(self):
        with pytest.raises(TraceError):
            EventStream(resource=0, chronons=(3, 1))

    def test_negative_rejected(self):
        with pytest.raises(TraceError):
            EventStream(resource=0, chronons=(-1, 2))

    def test_distinct_collapses_duplicates(self):
        stream = EventStream(resource=0, chronons=(1, 1, 2, 5, 5, 5))
        assert stream.distinct() == (1, 2, 5)

    def test_next_at_or_after(self):
        stream = EventStream(resource=0, chronons=(2, 5, 9))
        assert stream.next_at_or_after(0) == 2
        assert stream.next_at_or_after(5) == 5
        assert stream.next_at_or_after(6) == 9
        assert stream.next_at_or_after(10) is None

    def test_count_between(self):
        stream = EventStream(resource=0, chronons=(2, 5, 9))
        assert stream.count_between(2, 9) == 3
        assert stream.count_between(3, 8) == 1
        assert stream.count_between(10, 20) == 0


class TestTraceBundle:
    def test_from_mapping_sorts(self):
        bundle = TraceBundle.from_mapping({0: [5, 1, 3]})
        assert bundle.stream(0).chronons == (1, 3, 5)

    def test_missing_stream_is_empty(self):
        bundle = TraceBundle.from_mapping({0: [1]})
        assert len(bundle.stream(7)) == 0

    def test_totals_and_intensity(self):
        bundle = TraceBundle.from_mapping({0: [1, 2], 1: [3, 4, 5, 6]})
        assert bundle.total_events == 6
        assert bundle.mean_intensity() == 3.0

    def test_empty_intensity(self):
        assert TraceBundle().mean_intensity() == 0.0

    def test_validate_against_epoch(self):
        bundle = TraceBundle.from_mapping({0: [1, 99]})
        with pytest.raises(TraceError):
            bundle.validate(Epoch(50))
        bundle.validate(Epoch(100))

    def test_restricted_to(self):
        bundle = TraceBundle.from_mapping({0: [1], 1: [2], 2: [3]})
        sub = bundle.restricted_to([0, 2])
        assert sub.resources == [0, 2]


class TestPoissonTrace:
    def test_mean_intensity_near_lambda(self):
        epoch = Epoch(1000)
        trace = poisson_trace(500, epoch, 20.0, np.random.default_rng(1))
        assert 18.0 < trace.mean_intensity() < 22.0

    def test_events_inside_epoch(self):
        epoch = Epoch(100)
        trace = poisson_trace(50, epoch, 10.0, np.random.default_rng(2))
        trace.validate(epoch)

    def test_at_most_one_event_per_chronon_per_resource(self):
        epoch = Epoch(20)
        trace = poisson_trace(10, epoch, 30.0, np.random.default_rng(3))
        for rid in trace.resources:
            chronons = trace.stream(rid).chronons
            assert len(chronons) == len(set(chronons))

    def test_deterministic_with_seed(self):
        epoch = Epoch(100)
        a = poisson_trace(10, epoch, 5.0, np.random.default_rng(7))
        b = poisson_trace(10, epoch, 5.0, np.random.default_rng(7))
        assert all(a.stream(r).chronons == b.stream(r).chronons for r in range(10))

    def test_heterogeneity_spreads_rates(self):
        epoch = Epoch(1000)
        uniform = poisson_trace(200, epoch, 20.0, np.random.default_rng(4))
        spread = poisson_trace(
            200, epoch, 20.0, np.random.default_rng(4), heterogeneity=1.0
        )
        var_uniform = np.var([len(uniform.stream(r)) for r in range(200)])
        var_spread = np.var([len(spread.stream(r)) for r in range(200)])
        assert var_spread > var_uniform

    def test_parameter_validation(self):
        epoch = Epoch(10)
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            poisson_trace(0, epoch, 5.0, rng)
        with pytest.raises(TraceError):
            poisson_trace(5, epoch, -1.0, rng)
        with pytest.raises(TraceError):
            poisson_trace(5, epoch, 5.0, rng, heterogeneity=-0.5)


class TestAuctionTrace:
    def test_paper_aggregates(self):
        epoch = Epoch(1000)
        trace = simulate_auction_trace(epoch, np.random.default_rng(11))
        assert trace.num_auctions == 732
        # Same-chronon bids collapse, so the total is near-but-below 11150.
        assert 9000 <= trace.total_bids <= 11150

    def test_every_auction_has_a_bid(self):
        epoch = Epoch(500)
        trace = simulate_auction_trace(
            epoch, np.random.default_rng(12), num_auctions=50, total_bids=300
        )
        assert all(len(trace.bundle.stream(r)) >= 1 for r in range(50))

    def test_bids_within_lifetimes(self):
        epoch = Epoch(500)
        trace = simulate_auction_trace(
            epoch, np.random.default_rng(13), num_auctions=40, total_bids=400
        )
        for info in trace.auctions:
            stream = trace.bundle.stream(info.resource)
            assert stream.chronons[0] >= info.open_chronon
            assert stream.chronons[-1] <= info.close_chronon

    def test_lifetime_fraction_respected(self):
        epoch = Epoch(1000)
        trace = simulate_auction_trace(
            epoch,
            np.random.default_rng(14),
            num_auctions=30,
            total_bids=300,
            lifetime_fraction=0.1,
        )
        for info in trace.auctions:
            assert info.lifetime <= 110

    def test_sniping_concentrates_bids_late(self):
        epoch = Epoch(1000)
        sniped = simulate_auction_trace(
            epoch, np.random.default_rng(15), num_auctions=100, total_bids=3000,
            sniping_fraction=0.9, sniping_window=0.1,
        )
        late = 0
        total = 0
        for info in sniped.auctions:
            stream = sniped.bundle.stream(info.resource)
            threshold = info.close_chronon - info.lifetime * 0.2
            late += sum(1 for c in stream if c >= threshold)
            total += len(stream)
        assert late / total > 0.5

    def test_parameter_validation(self):
        epoch = Epoch(100)
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            simulate_auction_trace(epoch, rng, num_auctions=0)
        with pytest.raises(TraceError):
            simulate_auction_trace(epoch, rng, num_auctions=10, total_bids=5)
        with pytest.raises(TraceError):
            simulate_auction_trace(epoch, rng, lifetime_fraction=0.0)
        with pytest.raises(TraceError):
            simulate_auction_trace(epoch, rng, sniping_fraction=1.5)


class TestNewsTrace:
    def test_paper_aggregates(self):
        epoch = Epoch(1000)
        trace = simulate_news_trace(epoch, np.random.default_rng(21))
        assert trace.num_feeds == 130
        assert trace.raw_event_count == 68_000

    def test_distinct_chronons_after_collapse(self):
        epoch = Epoch(200)
        trace = simulate_news_trace(
            epoch, np.random.default_rng(22), num_feeds=10, total_events=5000
        )
        for rid in trace.bundle.resources:
            chronons = trace.bundle.stream(rid).chronons
            assert len(chronons) == len(set(chronons))

    def test_skew_concentrates_volume(self):
        epoch = Epoch(1000)
        skewed = simulate_news_trace(
            epoch, np.random.default_rng(23), num_feeds=50, total_events=20_000,
            skew=1.5,
        )
        counts = sorted(
            (len(skewed.bundle.stream(r)) for r in range(50)), reverse=True
        )
        # The top feed (collapsed) should far outnumber the bottom one.
        assert counts[0] > 5 * counts[-1]

    def test_every_feed_has_events(self):
        epoch = Epoch(300)
        trace = simulate_news_trace(
            epoch, np.random.default_rng(24), num_feeds=20, total_events=500
        )
        assert all(len(trace.bundle.stream(r)) >= 1 for r in range(20))

    def test_parameter_validation(self):
        epoch = Epoch(100)
        rng = np.random.default_rng(0)
        with pytest.raises(TraceError):
            simulate_news_trace(epoch, rng, num_feeds=0)
        with pytest.raises(TraceError):
            simulate_news_trace(epoch, rng, num_feeds=10, total_events=5)
        with pytest.raises(TraceError):
            simulate_news_trace(epoch, rng, skew=-1.0)
        with pytest.raises(TraceError):
            simulate_news_trace(epoch, rng, diurnal_amplitude=1.0)
