"""Unit tests for the Proposition 5 transformation."""

import pytest

from repro.core.errors import InstanceTooLargeError
from repro.core.profile import ProfileSet
from repro.offline.transform import (
    cei_to_combinations,
    linking_resource,
    rebuild_unit_profiles,
    to_unit_instance,
    unit_instance_from_ceis,
)
from tests.conftest import make_cei


class TestCombinations:
    def test_count_is_product_of_widths(self):
        c = make_cei((0, 0, 2), (1, 5, 6))  # widths 3 and 2
        combos = cei_to_combinations(c, origin=0, max_combinations=100)
        assert len(combos) == 6

    def test_unit_cei_yields_single_combination(self):
        c = make_cei((0, 3, 3), (1, 7, 7))
        combos = cei_to_combinations(c, origin=0, max_combinations=100)
        assert len(combos) == 1
        assert combos[0].slots == ((3, 0), (7, 1))

    def test_every_combination_picks_one_chronon_per_ei(self):
        c = make_cei((0, 0, 1), (1, 4, 5))
        combos = cei_to_combinations(c, origin=3, max_combinations=100)
        slot_sets = {combo.slots for combo in combos}
        assert slot_sets == {
            ((0, 0), (4, 1)),
            ((0, 0), (5, 1)),
            ((1, 0), (4, 1)),
            ((1, 0), (5, 1)),
        }
        assert all(combo.origin == 3 for combo in combos)

    def test_guard_raises(self):
        c = make_cei((0, 0, 9), (1, 0, 9))  # 100 combos
        with pytest.raises(InstanceTooLargeError):
            cei_to_combinations(c, origin=0, max_combinations=50)

    def test_linking_slot_appended(self):
        c = make_cei((0, 2, 3),)
        combos = cei_to_combinations(c, origin=1, max_combinations=10, linking_horizon=10)
        for combo in combos:
            assert combo.rank == 2
            link = combo.slots[-1]
            assert link[1] == linking_resource(1)
            assert link[0] == combo.slots[0][0] + 1

    def test_linking_clamped_to_horizon(self):
        c = make_cei((0, 9, 9),)
        combos = cei_to_combinations(c, origin=0, max_combinations=10, linking_horizon=10)
        assert combos[0].slots[-1][0] == 9

    def test_real_slots_excludes_linking(self):
        c = make_cei((0, 2, 2),)
        combo = cei_to_combinations(c, 0, 10, linking_horizon=10)[0]
        assert list(combo.real_slots()) == [(2, 0)]


class TestInstances:
    def test_to_unit_instance_counts_origins(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 1)), make_cei((1, 2, 2))])
        instance = to_unit_instance(profiles)
        assert instance.num_origins == 2
        assert len(instance) == 3  # 2 combos + 1 combo

    def test_to_unit_instance_total_guard(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 9)), make_cei((1, 0, 9))]
        )
        with pytest.raises(InstanceTooLargeError):
            to_unit_instance(profiles, max_combinations=15)

    def test_unit_fast_path_requires_unit(self):
        with pytest.raises(InstanceTooLargeError):
            unit_instance_from_ceis([make_cei((0, 0, 3))])

    def test_unit_fast_path(self):
        instance = unit_instance_from_ceis([make_cei((0, 3, 3), (1, 5, 5))])
        assert len(instance) == 1
        assert instance.unit_ceis[0].earliest == 3
        assert instance.unit_ceis[0].latest == 5

    def test_rebuild_unit_profiles(self):
        instance = unit_instance_from_ceis(
            [make_cei((0, 3, 3), (1, 5, 5))], linking_horizon=10
        )
        rebuilt = rebuild_unit_profiles(instance)
        assert rebuilt.num_ceis == 1
        # Linking slots must not materialize as real EIs.
        assert rebuilt.num_eis == 2
        assert all(ei.resource >= 0 for ei in rebuilt.eis())

    def test_weights_preserved(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 1), weight=2.5)])
        instance = to_unit_instance(profiles)
        assert all(u.weight == 2.5 for u in instance.unit_ceis)
