"""Tests for the Figure 10 single-EI upper bound."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import BudgetVector
from repro.core.timebase import Epoch
from repro.offline.upper_bound import relax_to_rank_one, single_ei_upper_bound
from repro.online.arrivals import arrivals_from_profiles
from repro.online.monitor import OnlineMonitor
from repro.policies import make_policy
from tests.conftest import make_cei, make_profiles, random_unit_instance


class TestRelaxation:
    def test_every_ei_becomes_rank_one_cei(self):
        profiles = make_profiles(make_cei((0, 0, 1), (1, 2, 3)), make_cei((2, 4, 5)))
        relaxed = relax_to_rank_one(profiles)
        assert relaxed.num_ceis == 3
        assert relaxed.rank == 1

    def test_relaxation_copies_true_windows(self):
        from repro.core.intervals import ComplexExecutionInterval, ExecutionInterval

        ei = ExecutionInterval(resource=0, start=0, finish=2, true_start=5, true_finish=7)
        profiles = make_profiles(ComplexExecutionInterval(eis=(ei,)))
        relaxed = relax_to_rank_one(profiles)
        copy = next(relaxed.eis())
        assert (copy.true_start, copy.true_finish) == (5, 7)
        assert copy is not ei

    def test_original_parents_untouched(self):
        c = make_cei((0, 0, 1), (1, 2, 3))
        profiles = make_profiles(c)
        relax_to_rank_one(profiles)
        assert all(ei.parent is c for ei in c.eis)


class TestBound:
    def test_trivial_instance_bound_is_one(self):
        profiles = make_profiles(make_cei((0, 0, 5)))
        result = single_ei_upper_bound(profiles, Epoch(6), BudgetVector.constant(1, 6))
        assert result.completeness_bound == 1.0
        assert result.num_eis == 1

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000), rank=st.integers(1, 3))
    def test_bound_dominates_policies_on_no_overlap_unit_instances(self, seed, rank):
        """On uniform-rank P^[1] no-overlap instances (the Figure 10
        family) the relaxed S-EDF run is optimal for the relaxation, and
        CEI-fraction <= EI-fraction, so no policy may exceed the bound.
        (With *mixed* ranks the bound does not apply: capturing the cheap
        rank-1 CEIs can push the CEI fraction above the EI fraction.)"""
        rng = np.random.default_rng(seed)
        profiles = random_unit_instance(
            rng, num_resources=5, num_chronons=10, num_ceis=6,
            max_rank=rank, no_overlap=True, fixed_rank=rank,
        )
        if profiles.num_ceis == 0:
            return
        epoch = Epoch(12)
        budget = BudgetVector.constant(1, 12)
        bound = single_ei_upper_bound(profiles, epoch, budget).completeness_bound
        for name in ("S-EDF", "MRSF", "M-EDF", "FIFO"):
            monitor = OnlineMonitor(make_policy(name), budget)
            monitor.run(epoch, arrivals_from_profiles(profiles))
            completeness = monitor.pool.num_satisfied / profiles.num_ceis
            assert completeness <= bound + 1e-9
