"""Tests for the workload validators."""

import numpy as np

from repro.core.profile import ProfileSet
from repro.core.timebase import Epoch
from repro.traces.noise import perfect_predictions
from repro.traces.poisson import poisson_trace
from repro.workloads.generator import GeneratorSpec, generate_profiles
from repro.workloads.templates import LengthRule
from repro.workloads.validators import (
    check_distinct_resources_per_cei,
    check_fixed_rank,
    check_no_intra_resource_overlap,
    check_unit_widths,
    check_within_epoch,
    validate_instance,
)
from tests.conftest import make_cei


class TestIndividualChecks:
    def test_within_epoch_pass(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 9))])
        assert check_within_epoch(profiles, Epoch(10)) == []

    def test_within_epoch_fail(self):
        profiles = ProfileSet.from_ceis([make_cei((0, 0, 20))])
        violations = check_within_epoch(profiles, Epoch(10))
        assert len(violations) == 1
        assert violations[0].rule == "within-epoch"

    def test_overlap_detection(self):
        overlapping = ProfileSet.from_ceis(
            [make_cei((0, 0, 5)), make_cei((0, 4, 9))]
        )
        clean = ProfileSet.from_ceis([make_cei((0, 0, 3)), make_cei((0, 4, 9))])
        assert check_no_intra_resource_overlap(overlapping)
        assert check_no_intra_resource_overlap(clean) == []

    def test_unit_widths(self):
        unit = ProfileSet.from_ceis([make_cei((0, 3, 3))])
        wide = ProfileSet.from_ceis([make_cei((0, 3, 5))])
        assert check_unit_widths(unit) == []
        assert check_unit_widths(wide)[0].rule == "unit-widths"

    def test_fixed_rank(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 1), (1, 2, 3)), make_cei((2, 4, 5))]
        )
        assert check_fixed_rank(profiles, 2)
        assert check_fixed_rank(profiles, 1)

    def test_distinct_resources(self):
        repeated = ProfileSet.from_ceis([make_cei((0, 0, 1), (0, 3, 4))])
        violations = check_distinct_resources_per_cei(repeated)
        assert violations[0].rule == "distinct-resources"


class TestValidateInstance:
    def test_figure10_instances_pass_their_contract(self):
        epoch = Epoch(300)
        rng = np.random.default_rng(7)
        trace = poisson_trace(60, epoch, 8.0, rng)
        profiles = generate_profiles(
            perfect_predictions(trace), epoch,
            GeneratorSpec(
                num_profiles=10, rank_max=3, fixed_rank=2,
                exclusive_resources=True,
            ),
            LengthRule.window(0), rng,
        )
        report = validate_instance(
            profiles, epoch,
            require_no_overlap=True, require_unit=True, require_rank=2,
        )
        assert report.ok
        assert "valid" in report.to_text()

    def test_report_aggregates_by_rule(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, 0, 5)), make_cei((0, 4, 9)), make_cei((1, 0, 50))]
        )
        report = validate_instance(
            profiles, Epoch(10), require_no_overlap=True, require_unit=True
        )
        assert not report.ok
        counts = report.by_rule()
        assert counts["within-epoch"] == 1
        assert counts["no-intra-resource-overlap"] == 1
        assert counts["unit-widths"] == 3

    def test_to_text_truncates(self):
        profiles = ProfileSet.from_ceis(
            [make_cei((0, i, i + 2)) for i in range(0, 40, 1)]
        )
        report = validate_instance(profiles, Epoch(50), require_unit=True)
        text = report.to_text(limit=3)
        assert "... and" in text
