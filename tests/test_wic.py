"""Unit tests for the WIC baseline policy."""

import pytest

from repro.core.errors import ModelError
from repro.policies.wic import WIC, Life
from tests.conftest import make_cei


class FakeView:
    def is_ei_captured(self, ei):
        return False

    def captured_count(self, cei):
        return 0

    def active_uncaptured_on(self, resource):
        return 0


def activate(policy: WIC, resource: int, chronon: int) -> None:
    """Signal one update to WIC via an EI opening at its start chronon."""
    ei = make_cei((resource, chronon, chronon + 3)).eis[0]
    policy.on_ei_activated(ei, chronon)


class TestLifeSemantics:
    def test_overwrite_keeps_one_alive_item(self):
        policy = WIC(life=Life.OVERWRITE)
        policy.on_run_start(4)
        activate(policy, 0, 1)
        activate(policy, 0, 5)
        assert policy.utility(0, 5) == 1

    def test_time_window_accumulates(self):
        policy = WIC(life=Life.TIME_WINDOW, window=10)
        policy.on_run_start(4)
        activate(policy, 0, 1)
        activate(policy, 0, 5)
        assert policy.utility(0, 5) == 2

    def test_time_window_expires_old_updates(self):
        policy = WIC(life=Life.TIME_WINDOW, window=3)
        policy.on_run_start(4)
        activate(policy, 0, 1)
        policy.on_chronon_start(10)
        assert policy.utility(0, 10) == 0

    def test_life_accepts_string(self):
        assert WIC(life="time-window", window=5)._life is Life.TIME_WINDOW

    def test_negative_window_rejected(self):
        with pytest.raises(ModelError):
            WIC(life=Life.TIME_WINDOW, window=-1)


class TestUtilityAndSelection:
    def test_probe_resets_utility(self):
        policy = WIC()
        policy.on_run_start(4)
        activate(policy, 0, 1)
        policy.on_probe(0, 2)
        assert policy.utility(0, 2) == 0

    def test_mid_window_activation_is_not_an_update(self):
        policy = WIC()
        policy.on_run_start(4)
        ei = make_cei((0, 1, 8)).eis[0]
        policy.on_ei_activated(ei, 4)  # revealed late, not at its start
        assert policy.utility(0, 4) == 0

    def test_select_resources_orders_by_utility(self):
        policy = WIC(life=Life.TIME_WINDOW, window=50)
        policy.on_run_start(4)
        activate(policy, 0, 1)
        activate(policy, 1, 1)
        activate(policy, 1, 3)
        assert policy.select_resources(3, 1, FakeView()) == [1]

    def test_select_resources_prefers_fresh_on_ties(self):
        policy = WIC()
        policy.on_run_start(4)
        activate(policy, 0, 1)
        activate(policy, 1, 4)
        assert policy.select_resources(4, 1, FakeView()) == [1]

    def test_select_resources_respects_limit(self):
        policy = WIC()
        policy.on_run_start(4)
        for rid in range(4):
            activate(policy, rid, 1)
        assert len(policy.select_resources(1, 2, FakeView())) == 2

    def test_select_resources_empty_when_nothing_alive(self):
        policy = WIC()
        policy.on_run_start(4)
        assert policy.select_resources(0, 3, FakeView()) == []

    def test_freshness_of_unknown_resource(self):
        policy = WIC()
        policy.on_run_start(4)
        assert policy.freshness(0, 9) == 10

    def test_run_start_clears_state(self):
        policy = WIC()
        activate(policy, 0, 1)
        policy.on_run_start(4)
        assert policy.utility(0, 2) == 0

    def test_sort_key_uses_resource_id_not_deadline(self):
        policy = WIC()
        policy.on_run_start(4)
        ei = make_cei((2, 0, 9)).eis[0]
        key = policy.sort_key(ei, 0, FakeView())
        assert key[1] == 2  # resource id, not finish chronon
