"""Tests for the λ × m workload-surface experiment and the heatmap."""

import pytest

from repro.core.errors import ReproError
from repro.experiments import workload_grid
from repro.sim.charts import heatmap

SCALE = 0.12


@pytest.fixture(scope="module")
def grid_result():
    return workload_grid.run(scale=SCALE, seed=1, repetitions=2)


class TestWorkloadGrid:
    def test_covers_all_cells_and_policies(self, grid_result):
        cells = {(row[0], row[1], row[2]) for row in grid_result.rows}
        assert len(cells) == 3 * 3 * 2  # lambdas x profile counts x policies

    def test_completeness_falls_along_both_axes(self, grid_result):
        by_cell = {
            (row[0], row[1]): row[3]
            for row in grid_result.rows
            if row[2] == "MRSF(P)"
        }
        lams = sorted({k[0] for k in by_cell})
        ms = sorted({k[1] for k in by_cell})
        # Corner comparison: easiest cell clearly beats hardest cell.
        assert by_cell[(lams[0], ms[0])] > by_cell[(lams[-1], ms[-1])]

    def test_mrsf_dominates_sedf_everywhere(self, grid_result):
        mrsf = {
            (row[0], row[1]): row[3]
            for row in grid_result.rows
            if row[2] == "MRSF(P)"
        }
        sedf = {
            (row[0], row[1]): row[3]
            for row in grid_result.rows
            if row[2] == "S-EDF(NP)"
        }
        assert all(mrsf[cell] >= sedf[cell] - 0.03 for cell in mrsf)

    def test_heatmaps_render(self, grid_result):
        text = workload_grid.heatmaps(grid_result)
        assert "MRSF(P) completeness" in text
        assert "advantage" in text
        assert "scale:" in text


class TestHeatmap:
    def test_basic_render(self):
        text = heatmap([1, 2], ["a", "b"], [[0.0, 0.5], [0.5, 1.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "1.00" in text and "0.00" in text

    def test_none_cells_blank(self):
        text = heatmap([1], ["a", "b"], [[0.4, None]])
        assert "0.40" in text

    def test_flat_matrix(self):
        text = heatmap([1, 2], ["a"], [[0.5], [0.5]])
        assert "0.50" in text

    def test_empty_matrix(self):
        text = heatmap([], [], [])
        assert "scale:" in text


class TestProxyDemo:
    def test_main_runs(self, capsys):
        from repro.proxy.__main__ import main

        assert main(["--chronons", "150", "--clients", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "analyst" in out and "run diagnostics" in out

    def test_policy_option(self, capsys):
        from repro.proxy.__main__ import main

        assert main(
            ["--chronons", "120", "--clients", "4", "--policy", "S-EDF"]
        ) == 0
        assert "S-EDF" in capsys.readouterr().out
