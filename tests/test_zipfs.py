"""Unit tests for the bounded Zipf samplers."""

import numpy as np
import pytest

from repro.core.errors import WorkloadError
from repro.workloads.zipfs import ZipfSampler, zipf_probabilities


class TestProbabilities:
    def test_sum_to_one(self):
        assert zipf_probabilities(1.37, 100).sum() == pytest.approx(1.0)

    def test_zero_exponent_is_uniform(self):
        probabilities = zipf_probabilities(0.0, 4)
        assert np.allclose(probabilities, 0.25)

    def test_monotone_decreasing(self):
        probabilities = zipf_probabilities(1.0, 10)
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))

    def test_higher_theta_more_skew(self):
        mild = zipf_probabilities(0.5, 10)
        strong = zipf_probabilities(2.0, 10)
        assert strong[0] > mild[0]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_probabilities(1.0, 0)
        with pytest.raises(WorkloadError):
            zipf_probabilities(-1.0, 5)


class TestSampler:
    def test_values_in_support(self):
        sampler = ZipfSampler(1.0, 7, np.random.default_rng(0))
        draws = sampler.sample_many(500)
        assert draws.min() >= 1
        assert draws.max() <= 7

    def test_single_sample(self):
        sampler = ZipfSampler(0.0, 5, np.random.default_rng(1))
        assert 1 <= sampler.sample() <= 5

    def test_skew_prefers_small_values(self):
        sampler = ZipfSampler(1.5, 50, np.random.default_rng(2))
        draws = sampler.sample_many(2000)
        assert (draws <= 5).mean() > 0.4

    def test_uniform_mean_centered(self):
        sampler = ZipfSampler(0.0, 9, np.random.default_rng(3))
        draws = sampler.sample_many(5000)
        assert 4.5 < draws.mean() < 5.5

    def test_sample_distinct_unique(self):
        sampler = ZipfSampler(1.0, 10, np.random.default_rng(4))
        values = sampler.sample_distinct(10)
        assert sorted(values) == list(range(1, 11))

    def test_sample_distinct_partial(self):
        sampler = ZipfSampler(1.0, 10, np.random.default_rng(5))
        values = sampler.sample_distinct(4)
        assert len(values) == len(set(values)) == 4

    def test_sample_distinct_too_many(self):
        sampler = ZipfSampler(1.0, 3, np.random.default_rng(6))
        with pytest.raises(WorkloadError):
            sampler.sample_distinct(4)

    def test_negative_size_rejected(self):
        sampler = ZipfSampler(1.0, 3, np.random.default_rng(7))
        with pytest.raises(WorkloadError):
            sampler.sample_many(-1)

    def test_deterministic_given_seed(self):
        a = ZipfSampler(1.0, 20, np.random.default_rng(8)).sample_many(50)
        b = ZipfSampler(1.0, 20, np.random.default_rng(8)).sample_many(50)
        assert (a == b).all()
